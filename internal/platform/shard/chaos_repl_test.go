package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/obs"
	"sybiltd/internal/platform"
)

// TestChaosReplicatedPrimaryKillZeroAckedLoss is the replicated chaos
// campaign: a 3-group x 2-replica semi-sync fleet behind a failover-
// polling router, a concurrent submission load, one group's primary
// killed mid-flight (WAL aborted, connection refused) and later restarted
// on the same address still claiming its stale primacy. The contract:
//
//   - the poller promotes the surviving follower on its own and the
//     router resumes acking writes for that group with no operator action
//     once the group is redundant again;
//   - semi-sync means every pre-kill ack was durable on both replicas, so
//     promotion loses nothing: zero acked loss, including acks whose
//     primary died right after answering;
//   - the returned old primary is demoted by epoch, snapshot-reset from
//     the new primary, and catches up until its lag reads zero;
//   - the final router aggregation is bit-identical to a single-node
//     platform.AggregateDataset run over the merged dataset.
func TestChaosReplicatedPrimaryKillZeroAckedLoss(t *testing.T) {
	const (
		numTasks      = 3
		phase1Workers = 9
		phase2Workers = 9
		victim        = 1 // group whose primary dies
	)
	root := t.TempDir()
	fleet, cfgs := newReplicatedFleet(t, root, 3, 2, platform.AckSemiSync, 5*time.Millisecond)
	store, err := NewReplicated(context.Background(), cfgs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	poller := store.StartFailover(FailoverOptions{
		ProbeInterval: 20 * time.Millisecond,
		DeadInterval:  100 * time.Millisecond,
		Registry:      reg,
	})
	t.Cleanup(poller.Stop)
	routerAPI := platform.NewServer(store, nil)
	router := httptest.NewServer(routerAPI)
	t.Cleanup(router.Close)
	t.Cleanup(routerAPI.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	type acked struct {
		account string
		task    int
		value   float64
	}
	var (
		mu       sync.Mutex
		ackedSet []acked
		failed   []platform.SubmissionRequest
	)
	load := func(phase string, workers int) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				client := platform.NewClient(router.URL,
					platform.WithRetries(3),
					platform.WithBackoff(time.Millisecond, 20*time.Millisecond),
				)
				account := fmt.Sprintf("%s-acct-%d", phase, w)
				for task := 0; task < numTasks; task++ {
					req := platform.SubmissionRequest{
						Account: account, Task: task,
						Value: float64(-70 - w - task), Time: at(w*numTasks + task),
					}
					err := client.Submit(ctx, req)
					mu.Lock()
					// A duplicate rejection on retry proves the write landed
					// on the current primary before its ack was lost; under
					// semi-sync with the group's only follower dead that is
					// the one ack shape that may reach just one replica, and
					// the rejoining follower resets from that same primary,
					// so it still cannot be lost by the campaign's failover.
					if err == nil || errors.Is(err, platform.ErrDuplicateReport) {
						ackedSet = append(ackedSet, acked{req.Account, req.Task, req.Value})
					} else {
						failed = append(failed, req)
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 1: healthy fleet; semi-sync acks require both replicas, and
	// every submission must get one.
	load("p1", phase1Workers)
	if len(failed) != 0 {
		t.Fatalf("healthy fleet rejected %d submissions: %v", len(failed), failed[0])
	}

	// Kill the victim group's primary — hard: its WAL aborts with no final
	// snapshot. Everything it ever acked is already durable on its
	// follower (that is the semi-sync contract under test).
	oldAddr := fleet[victim].procs[0].addrOf()
	fleet[victim].procs[0].kill()

	// Phase 2 runs against the degraded fleet while the poller promotes;
	// mid-load the dead process "gets restarted by its supervisor" on the
	// same address, still claiming primacy at its stale epoch, and must be
	// demoted into the new primary's follower seat.
	restarted := make(chan *replProc, 1)
	go func() {
		// Fail soft off the test goroutine: a nil send means promotion
		// never happened, reported by the receive below.
		deadline := time.Now().Add(10 * time.Second)
		for store.Primary(victim) != 1 {
			if time.Now().After(deadline) {
				restarted <- nil
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		restarted <- startReplProc(t, filepath.Join(root, fmt.Sprintf("g%d-r0", victim)), oldAddr, platform.ReplicationOptions{
			ShipInterval: 5 * time.Millisecond,
		})
	}()
	load("p2", phase2Workers)
	old := <-restarted
	if old == nil {
		t.Fatal("poller never promoted the victim group's follower")
	}

	if n := counterOf(reg, "repl.failovers"); n < 1 {
		t.Errorf("repl.failovers = %d after the campaign, want >= 1", n)
	}

	// Only submissions owned by the victim group may have failed, and only
	// while it was below semi-sync redundancy.
	mu.Lock()
	for _, req := range failed {
		if sh := store.Shard(req.Account); sh != victim {
			t.Errorf("submission for %s (shard %d) failed with only shard %d degraded", req.Account, sh, victim)
		}
	}
	mu.Unlock()

	// The old primary rejoins as a follower of the promoted replica and
	// catches up until both cursors agree and its lag reads zero.
	rejoinDeadline := time.Now().Add(15 * time.Second)
	for {
		ost, oerr := old.client.ReplStatus(ctx)
		nst, nerr := fleet[victim].procs[1].client.ReplStatus(ctx)
		if oerr == nil && nerr == nil && ost.Role == platform.RoleFollower && ost.Lag == 0 &&
			ost.Epoch == nst.Epoch && ost.DurableSeq == nst.DurableSeq {
			break
		}
		if time.Now().After(rejoinDeadline) {
			t.Fatalf("old primary never demoted/caught up:\n  old: %+v (err %v)\n  new: %+v (err %v)\n  router primary idx: %d",
				ost, oerr, nst, nerr, store.Primary(victim))
		}
		time.Sleep(5 * time.Millisecond)
	}
	probe := platform.NewClient(router.URL, platform.WithRetries(0))
	waitUntil(t, 5*time.Second, "readyz to heal after rejoin", func() bool {
		rz, err := probe.Ready(ctx)
		return err == nil && rz.Status == "ready"
	})

	// The router resumed automatically: a fresh write owned by the victim
	// group acks through the promoted follower with no reconfiguration —
	// semi-sync again, now against the rejoined old primary.
	resumed := ""
	for i := 0; resumed == ""; i++ {
		if name := fmt.Sprintf("resume-%d", i); store.Shard(name) == victim {
			resumed = name
		}
	}
	if err := probe.Submit(ctx, platform.SubmissionRequest{Account: resumed, Task: 0, Value: -5, Time: at(50)}); err != nil {
		t.Fatalf("post-failover write to the victim group: %v", err)
	}
	mu.Lock()
	ackedSet = append(ackedSet, acked{resumed, 0, -5})
	mu.Unlock()

	// Drain the submissions that failed during the redundancy gap.
	mu.Lock()
	retry := append([]platform.SubmissionRequest(nil), failed...)
	failed = failed[:0]
	mu.Unlock()
	drain := platform.NewClient(router.URL,
		platform.WithRetries(3),
		platform.WithBackoff(time.Millisecond, 20*time.Millisecond),
	)
	for _, req := range retry {
		err := drain.Submit(ctx, req)
		if err != nil && !errors.Is(err, platform.ErrDuplicateReport) {
			t.Fatalf("post-recovery submit %s/%d: %v", req.Account, req.Task, err)
		}
		mu.Lock()
		ackedSet = append(ackedSet, acked{req.Account, req.Task, req.Value})
		mu.Unlock()
	}

	// Zero acked loss: every acknowledged submission — including acks
	// whose primary died immediately after answering — is in the merged
	// dataset with the right value.
	ds, err := probe.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	values := make(map[string]map[int]float64, ds.NumAccounts())
	for _, acct := range ds.Accounts {
		values[acct.ID] = make(map[int]float64, len(acct.Observations))
		for _, obs := range acct.Observations {
			values[acct.ID][obs.Task] = obs.Value
		}
	}
	want := (phase1Workers+phase2Workers)*numTasks + 1
	if len(ackedSet) != want {
		t.Errorf("%d acked submissions, want %d (every submission eventually acked)", len(ackedSet), want)
	}
	for _, a := range ackedSet {
		v, ok := values[a.account][a.task]
		if !ok {
			t.Errorf("ACKED DATA LOST: %s task %d missing after failover", a.account, a.task)
			continue
		}
		if v != a.value {
			t.Errorf("acked %s task %d = %v, recovered %v", a.account, a.task, a.value, v)
		}
	}

	// Bit-identical aggregation: the router's answer equals a single-node
	// run over the merged dataset it exported.
	for _, method := range []string{"mean", "crh", "td-ts"} {
		agg, err := probe.Aggregate(ctx, method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if agg.Meta.Degraded {
			t.Errorf("%s degraded after full recovery: %q", method, agg.Meta.DegradedReason)
		}
		res, _, err := platform.AggregateDataset(ctx, method, ds)
		if err != nil {
			t.Fatalf("%s single-node: %v", method, err)
		}
		for _, tr := range agg.Truths {
			if !tr.Estimated {
				if tr.Task < len(res.Truths) && !math.IsNaN(res.Truths[tr.Task]) {
					t.Errorf("%s task %d: router unestimated, single-node %v", method, tr.Task, res.Truths[tr.Task])
				}
				continue
			}
			if tr.Value != res.Truths[tr.Task] {
				t.Errorf("%s task %d: router %v != single-node %v (not bit-identical)",
					method, tr.Task, tr.Value, res.Truths[tr.Task])
			}
		}
	}
}
