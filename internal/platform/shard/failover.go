package shard

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"sybiltd/internal/obs"
	"sybiltd/internal/platform"
)

// FailoverOptions tunes Store.StartFailover.
type FailoverOptions struct {
	// ProbeInterval is the mean time between health probes of one
	// replica; <= 0 means 1s. Each replica gets its own probe goroutine
	// with an independently jittered period so a large fleet's probes
	// spread out instead of arriving in lockstep bursts.
	ProbeInterval time.Duration
	// Jitter is the probe-period spread as a fraction of ProbeInterval:
	// each wait is drawn uniformly from [(1-Jitter), (1+Jitter)] times the
	// interval. Negative disables jitter; the default is 0.2.
	Jitter float64
	// DeadInterval is how long a primary must stay unreachable before a
	// follower is promoted in its place; <= 0 means 3x ProbeInterval.
	// Shorter means faster failover but more spurious promotions on
	// transient blips.
	DeadInterval time.Duration
	// Registry receives the repl.failovers counter; nil means
	// obs.Default(), so the router's /metrics endpoints expose it.
	Registry *obs.Registry
	// Logger receives promotion/demotion diagnostics; nil disables.
	Logger *log.Logger
}

// replicaState is the poller's cached view of one replica, refreshed by
// its probe goroutine and read by failover decisions and /readyz.
type replicaState struct {
	mu        sync.Mutex
	lastProbe time.Time // when the last probe finished (success or not)
	lastOK    time.Time // last probe that reached the replica
	ready     bool
	status    string
	errMsg    string
	role      string
	epoch     uint64
	seq       uint64 // replica's durable sequence number
	// replSeen records that role/epoch/seq were successfully read from
	// the replica at least once (they are last-known values, sticky
	// through unreachable probes). A promotion decision must never trust
	// a zero-value epoch that merely means "never probed".
	replSeen bool
}

// groupProbe is the poller's per-group state: one cached entry per
// replica plus the channel that retires this group's probe goroutines
// without touching anyone else's.
type groupProbe struct {
	row  []*replicaState
	stop chan struct{}
}

// FailoverPoller watches every replica of every group and flips a group's
// primary when the current one stays dead past the dead interval: the
// reachable follower with the most durable records is promoted with a
// strictly higher epoch, and the old primary — demoted by epoch the
// moment it answers again — rejoins as a follower and catches up from the
// new primary's WAL. The poller also feeds /readyz from its probe cache,
// each entry stamped with its probe age.
type FailoverPoller struct {
	store *Store
	opts  FailoverOptions
	reg   *obs.Registry
	log   *log.Logger

	// states is keyed by the group object, not its topology position: a
	// shrink removes a group from the middle of the list and shifts every
	// later index, and positionally keyed probe state would then evaluate
	// group i's failover against group i+1's replicas. Group objects are
	// shared across topology generations, so the handle is stable for the
	// group's whole life — including the drain window after a shrink flip
	// when the retiring donor has already left the topology but still
	// needs failover coverage (retireGroup ends that coverage).
	stateMu sync.RWMutex
	states  map[*group]*groupProbe

	start time.Time

	// promoteMu serializes failover decisions across probe goroutines so
	// two probes observing the same dead primary cannot race two
	// promotions with two epochs.
	promoteMu sync.Mutex

	// lifeMu orders goroutine lifecycle against Stop: syncGroups may not
	// start probe goroutines once the stop channel closed.
	lifeMu   sync.Mutex
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// probeFor returns group g's probe row, or nil when the poller has not
// yet synced to a topology containing it (or already retired it).
func (p *FailoverPoller) probeFor(g *group) *groupProbe {
	p.stateMu.RLock()
	defer p.stateMu.RUnlock()
	return p.states[g]
}

// state returns the cached probe state for replica ri of group g.
func (p *FailoverPoller) state(g *group, ri int) *replicaState {
	gp := p.probeFor(g)
	if gp == nil || ri >= len(gp.row) {
		return nil
	}
	return gp.row[ri]
}

// StartFailover begins background health polling and automatic primary
// failover, and switches ShardHealth to the poller's probe cache. One
// synchronous probe round runs before it returns, so /readyz never serves
// an unprobed fleet. Stop the poller with its Stop method.
func (s *Store) StartFailover(opts FailoverOptions) *FailoverPoller {
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = time.Second
	}
	if opts.Jitter == 0 {
		opts.Jitter = 0.2
	}
	if opts.Jitter < 0 {
		opts.Jitter = 0
	}
	if opts.Jitter > 1 {
		opts.Jitter = 1
	}
	if opts.DeadInterval <= 0 {
		opts.DeadInterval = 3 * opts.ProbeInterval
	}
	p := &FailoverPoller{
		store:  s,
		opts:   opts,
		reg:    opts.Registry,
		log:    opts.Logger,
		start:  time.Now(),
		stop:   make(chan struct{}),
		states: make(map[*group]*groupProbe),
	}
	if p.reg == nil {
		p.reg = obs.Default()
	}
	t := s.topology()
	for _, g := range t.groups {
		p.states[g] = newGroupProbe(g)
	}
	// Initial synchronous round: probe everything once in parallel so the
	// first /readyz after startup reflects the fleet, not zero values.
	var init sync.WaitGroup
	for _, g := range t.groups {
		for ri := range g.replicas {
			init.Add(1)
			go func(g *group, ri int) {
				defer init.Done()
				p.probe(g, ri)
			}(g, ri)
		}
	}
	init.Wait()

	for gi, g := range t.groups {
		p.launchGroup(g, p.states[g], int64(gi))
	}
	s.pollMu.Lock()
	s.poller = p
	s.pollMu.Unlock()
	return p
}

func newGroupProbe(g *group) *groupProbe {
	gp := &groupProbe{row: make([]*replicaState, len(g.replicas)), stop: make(chan struct{})}
	for ri := range gp.row {
		gp.row[ri] = &replicaState{}
	}
	return gp
}

// launchGroup starts one jittered probe loop per replica of g. Callers
// hold lifeMu or run before the poller is published.
func (p *FailoverPoller) launchGroup(g *group, gp *groupProbe, seedOff int64) {
	seed := time.Now().UnixNano()
	for ri := range g.replicas {
		p.wg.Add(1)
		rng := rand.New(rand.NewSource(seed + seedOff*1009 + int64(ri)))
		go p.run(g, gp, ri, rng)
	}
}

// syncGroups starts probing any groups admitted after the poller began —
// the online-reshard join path. Existing groups keep their running probe
// loops (their *group objects are shared across topology generations); a
// new group gets one synchronous probe round and then its own jittered
// loops, exactly like groups present at startup. Groups that left the
// topology keep probing until retireGroup: a shrink's retiring donor
// still needs failover coverage while its fenced tail drains.
func (p *FailoverPoller) syncGroups(t *topology) {
	p.lifeMu.Lock()
	defer p.lifeMu.Unlock()
	select {
	case <-p.stop:
		return
	default:
	}
	var added []*group
	p.stateMu.Lock()
	for _, g := range t.groups {
		if p.states[g] == nil {
			p.states[g] = newGroupProbe(g)
			added = append(added, g)
		}
	}
	p.stateMu.Unlock()
	for i, g := range added {
		gp := p.probeFor(g)
		for ri := range g.replicas {
			p.probe(g, ri)
		}
		p.launchGroup(g, gp, int64(len(t.groups)+i))
	}
}

// retireGroup ends probe coverage for a group that finished leaving the
// ring (a decommission whose drain completed): its goroutines stop and
// its cached state drops out of the health view. Unknown groups are a
// no-op.
func (p *FailoverPoller) retireGroup(g *group) {
	p.stateMu.Lock()
	gp := p.states[g]
	delete(p.states, g)
	p.stateMu.Unlock()
	if gp != nil {
		close(gp.stop)
	}
}

// Stop halts the poller's probe goroutines and detaches it from the
// store's ShardHealth (which reverts to live probes). Idempotent.
func (p *FailoverPoller) Stop() {
	// Taking lifeMu around the close orders Stop against syncGroups: once
	// the channel is closed no new probe goroutines can start, so the
	// wg.Wait below sees every goroutine that will ever exist.
	p.lifeMu.Lock()
	p.stopOnce.Do(func() { close(p.stop) })
	p.lifeMu.Unlock()
	p.wg.Wait()
	p.store.pollMu.Lock()
	if p.store.poller == p {
		p.store.poller = nil
	}
	p.store.pollMu.Unlock()
}

// rpcTimeout bounds the role-change control RPCs. Unlike probes these do
// durable work on the far side (promotion persists the new epoch with a
// snapshot + fsync), so they get at least a second even when the probe
// interval is tuned aggressively short.
func (p *FailoverPoller) rpcTimeout() time.Duration {
	if p.opts.ProbeInterval > time.Second {
		return p.opts.ProbeInterval
	}
	return time.Second
}

// delay draws one jittered probe period: uniform in
// [(1-Jitter), (1+Jitter)] x ProbeInterval.
func (p *FailoverPoller) delay(rng *rand.Rand) time.Duration {
	f := 1 + p.opts.Jitter*(2*rng.Float64()-1)
	return time.Duration(float64(p.opts.ProbeInterval) * f)
}

// run is one replica's probe loop.
func (p *FailoverPoller) run(g *group, gp *groupProbe, ri int, rng *rand.Rand) {
	defer p.wg.Done()
	timer := time.NewTimer(p.delay(rng))
	defer timer.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-gp.stop:
			return
		case <-timer.C:
		}
		p.probe(g, ri)
		p.evaluate(g)
		timer.Reset(p.delay(rng))
	}
}

// probe refreshes one replica's cached state: /readyz for reachability
// and drain status, /v1/repl/status for role, epoch, and durable cursor.
// A node without replication configured (501 on the status route) is
// still a healthy single-replica shard — role just stays unknown.
func (p *FailoverPoller) probe(g *group, ri int) {
	st := p.state(g, ri)
	if st == nil || ri >= len(g.replicas) {
		return
	}
	b := g.replicas[ri]
	rc, ok := b.(replClient)
	if !ok {
		// An in-process backend has no probe surface; it lives and dies
		// with the router itself.
		st.mu.Lock()
		st.lastProbe = time.Now()
		st.lastOK = st.lastProbe
		st.ready = true
		st.status = "ready"
		st.errMsg = ""
		st.mu.Unlock()
		return
	}
	// A probe may take up to the dead interval to answer: deadness means
	// "no contact for DeadInterval", so cutting a slow-but-alive replica
	// off at the probe cadence would manufacture false deaths under load
	// spikes — and a false death is what makes failover dangerous.
	probeTimeout := p.opts.ProbeInterval
	if p.opts.DeadInterval > probeTimeout {
		probeTimeout = p.opts.DeadInterval
	}
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	rz, err := rc.Client().Ready(ctx)
	now := time.Now()
	if err != nil {
		st.mu.Lock()
		st.lastProbe = now
		st.ready = false
		st.status = "unreachable"
		st.errMsg = err.Error()
		st.mu.Unlock()
		return
	}
	rs, rerr := rc.Client().ReplStatus(ctx)
	st.mu.Lock()
	st.lastProbe = now
	st.lastOK = now
	st.status = rz.Status
	st.ready = rz.Status == "ready"
	st.errMsg = ""
	switch {
	case rerr == nil && rs.Role != "":
		st.role = rs.Role
		st.epoch = rs.Epoch
		st.seq = rs.DurableSeq
		st.replSeen = true
	case errors.Is(rerr, platform.ErrUnimplemented):
		// The node answers but runs no replication — typically restarted
		// without its replication flags. Its cached role is stale, not
		// merely unrefreshed; showing it (or demoting by it) would be
		// acting on a fiction.
		st.role = ""
		st.epoch = 0
		st.seq = 0
		st.replSeen = false
	}
	st.mu.Unlock()
}

// snapshotState reads one replica's cached probe result (a zero value
// when the replica was never registered with the poller).
func (p *FailoverPoller) snapshotState(g *group, ri int) replicaState {
	st := p.state(g, ri)
	if st == nil {
		return replicaState{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return replicaState{
		lastProbe: st.lastProbe, lastOK: st.lastOK,
		ready: st.ready, status: st.status, errMsg: st.errMsg,
		role: st.role, epoch: st.epoch, seq: st.seq, replSeen: st.replSeen,
	}
}

// groupName labels g for diagnostics: its position in the live topology,
// or its primary's address once it has been flipped out (a retiring
// donor draining after a shrink).
func (p *FailoverPoller) groupName(g *group) string {
	for gi, gg := range p.store.topology().groups {
		if gg == g {
			return fmt.Sprintf("shard %d", gi)
		}
	}
	if a := g.addr(g.primaryIdx()); a != "" {
		return fmt.Sprintf("retiring group (%s)", a)
	}
	return "retiring group"
}

// evaluate applies the failover state machine to group g:
//
//  1. if another replica claims primary at a higher epoch than the
//     current view, adopt it (someone else — another router, an operator —
//     already promoted);
//  2. while the current primary is alive, demote any other replica still
//     claiming primary at a stale epoch (a rejoining old primary that has
//     not yet been reached by the new primary's shipping);
//  3. once the primary has been unreachable past the dead interval,
//     promote the reachable follower with the newest (epoch, durable seq)
//     at a strictly higher epoch, with every other replica (the dead
//     primary included, for its return) as followers — but never one
//     whose epoch is behind the dead primary's: an epoch-stale replica
//     does not yet hold the acked data a promotion must preserve.
func (p *FailoverPoller) evaluate(g *group) {
	if len(g.replicas) < 2 {
		return
	}
	p.promoteMu.Lock()
	defer p.promoteMu.Unlock()

	cur := g.primaryIdx()
	curSt := p.snapshotState(g, cur)
	lastOK := curSt.lastOK
	if lastOK.IsZero() {
		// Never reached since the poller started: measure the dead
		// interval from poller start, not from the epoch zero time.
		lastOK = p.start
	}
	now := time.Now()

	// (1) adopt a higher-epoch primary elsewhere in the group.
	for ri := range g.replicas {
		if ri == cur {
			continue
		}
		st := p.snapshotState(g, ri)
		if st.role == platform.RolePrimary && st.epoch > curSt.epoch &&
			now.Sub(st.lastOK) <= p.opts.DeadInterval {
			g.setPrimary(ri)
			// An adoption is a completed failover: either another actor
			// promoted this replica, or our own promotion RPC was applied
			// but its ack was lost (a slow fsync on the persisted epoch can
			// outlive the RPC timeout), in which case this is where the
			// flip actually lands.
			p.reg.Counter("repl.failovers").Inc()
			p.logf("%s: adopting replica %d as primary (epoch %d > %d)", p.groupName(g), ri, st.epoch, curSt.epoch)
			return
		}
	}

	if now.Sub(lastOK) <= p.opts.DeadInterval {
		// (2) primary alive: demote stale claimants.
		for ri := range g.replicas {
			if ri == cur {
				continue
			}
			st := p.snapshotState(g, ri)
			if st.role == platform.RolePrimary && st.epoch <= curSt.epoch &&
				now.Sub(st.lastOK) <= p.opts.DeadInterval {
				p.demote(g, ri, curSt.epoch, g.addr(cur))
			}
		}
		return
	}

	// (3) primary dead: promote the best reachable follower, ordered by
	// (epoch, durable seq) — a higher epoch means a newer data lineage
	// regardless of raw sequence numbers.
	//
	// Epoch-visibility fence first: the promotion epoch is chosen above
	// every epoch this poller has OBSERVED. If the primary's replication
	// state was never successfully probed (e.g. the router restarted
	// after the primary died), its cached epoch is a zero value — the
	// bestEpoch < curSt.epoch fence below is then toothless, and
	// maxEpoch+1 could collide with the dead primary's real epoch: two
	// writers at one epoch, a split brain the equal-epoch contiguity
	// check cannot detect. Refuse to promote until the primary's epoch
	// has been seen at least once (it becomes promotable the moment the
	// primary answers one probe — or an operator promotes manually).
	if !curSt.replSeen {
		p.logf("%s: not promoting: dead primary's epoch was never observed (restart it or promote manually)", p.groupName(g))
		return
	}
	best := -1
	var bestEpoch, bestSeq uint64
	maxEpoch := curSt.epoch
	for ri := range g.replicas {
		st := p.snapshotState(g, ri)
		if st.epoch > maxEpoch {
			maxEpoch = st.epoch
		}
		if ri == cur || st.lastOK.IsZero() || now.Sub(st.lastOK) > p.opts.DeadInterval {
			continue
		}
		if best == -1 || st.epoch > bestEpoch || (st.epoch == bestEpoch && st.seq > bestSeq) {
			best, bestEpoch, bestSeq = ri, st.epoch, st.seq
		}
	}
	if best < 0 {
		return // whole group dark; nothing to promote
	}
	// Epoch fence: never promote a candidate from an older lineage than
	// the primary we are declaring dead. A rejoining stale primary sits at
	// its old epoch until the snapshot reset lands; promoting it over the
	// real primary would ship ITS stale snapshot back and erase acked
	// data. It becomes promotable the moment the reset adopts the current
	// epoch — i.e. once it actually holds the data a promotion must keep.
	if bestEpoch < curSt.epoch {
		p.logf("%s: not promoting replica %d: epoch %d behind dead primary's %d (awaiting catch-up)",
			p.groupName(g), best, bestEpoch, curSt.epoch)
		return
	}
	rc, ok := g.replicas[best].(replClient)
	if !ok {
		return
	}
	newEpoch := maxEpoch + 1
	followers := make([]string, 0, len(g.replicas)-1)
	for ri := range g.replicas {
		if ri != best {
			// The dead primary's address is included on purpose: when it
			// returns, the new primary's shipping reaches it, demotes it by
			// epoch, and catches it up.
			followers = append(followers, g.addr(ri))
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.rpcTimeout())
	defer cancel()
	resp, err := rc.Client().ReplSetRole(ctx, platform.ReplRoleRequest{
		Role:      platform.RolePrimary,
		Epoch:     newEpoch,
		Followers: followers,
	})
	if err != nil {
		p.logf("%s: promote replica %d (epoch %d) failed: %v", p.groupName(g), best, newEpoch, err)
		return
	}
	g.setPrimary(best)
	if st := p.state(g, best); st != nil {
		st.mu.Lock()
		st.role = resp.Role
		st.epoch = resp.Epoch
		st.lastOK = time.Now()
		st.mu.Unlock()
	}
	p.reg.Counter("repl.failovers").Inc()
	p.logf("%s: promoted replica %d (%s) to primary at epoch %d (dead primary was replica %d)",
		p.groupName(g), best, g.addr(best), newEpoch, cur)
}

// demote tells a stale primary claimant to step down and follow the
// current primary.
func (p *FailoverPoller) demote(g *group, ri int, epoch uint64, primaryAddr string) {
	if ri >= len(g.replicas) {
		return
	}
	rc, ok := g.replicas[ri].(replClient)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.rpcTimeout())
	defer cancel()
	if _, err := rc.Client().ReplSetRole(ctx, platform.ReplRoleRequest{
		Role:    platform.RoleFollower,
		Epoch:   epoch,
		Primary: primaryAddr,
	}); err != nil {
		p.logf("%s: demote stale primary replica %d: %v", p.groupName(g), ri, err)
		return
	}
	if st := p.state(g, ri); st != nil {
		st.mu.Lock()
		st.role = platform.RoleFollower
		st.mu.Unlock()
	}
	p.logf("%s: demoted stale primary replica %d (%s)", p.groupName(g), ri, g.addr(ri))
}

// health renders the probe cache as /readyz shard entries, one per
// replica of the LIVE topology, each stamped with its probe age so
// consumers can tell cached state from fresh. A group that left the ring
// (a completed decommission) drops out here even while its last probes
// wind down.
func (p *FailoverPoller) health() []platform.ShardHealth {
	now := time.Now()
	var out []platform.ShardHealth
	for gi, g := range p.store.topology().groups {
		for ri := range g.replicas {
			st := p.snapshotState(g, ri)
			h := platform.ShardHealth{
				Shard:   gi,
				Replica: ri,
				Addr:    g.addr(ri),
				Ready:   st.ready,
				Status:  st.status,
				Error:   st.errMsg,
				Role:    st.role,
			}
			if !st.lastProbe.IsZero() {
				h.ProbeAgeMs = now.Sub(st.lastProbe).Milliseconds()
				if h.ProbeAgeMs < 1 {
					h.ProbeAgeMs = 1 // floor: 0 would vanish under omitempty
				}
			} else {
				h.Status = "unprobed"
			}
			out = append(out, h)
		}
	}
	return out
}

func (p *FailoverPoller) logf(format string, args ...any) {
	if p.log != nil {
		p.log.Printf("failover: "+format, args...)
	}
}
