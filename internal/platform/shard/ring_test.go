package shard

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a := NewRing(3, 0)
	b := NewRing(3, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("account-%d", i)
		if a.Shard(key) != b.Shard(key) {
			t.Fatalf("ring placement for %q differs between identical rings: %d vs %d",
				key, a.Shard(key), b.Shard(key))
		}
	}
	if a.Shards() != 3 {
		t.Errorf("Shards() = %d, want 3", a.Shards())
	}
}

func TestRingBalance(t *testing.T) {
	const keys = 10000
	r := NewRing(4, 0)
	counts := make([]int, 4)
	for i := 0; i < keys; i++ {
		counts[r.Shard(fmt.Sprintf("account-%d", i))]++
	}
	// With 128 vnodes per shard the expected imbalance is a few percent;
	// allow a generous ±40% of the fair share before calling it broken.
	fair := keys / 4
	for sh, n := range counts {
		if n < fair*6/10 || n > fair*14/10 {
			t.Errorf("shard %d owns %d of %d keys (fair share %d): ring is unbalanced %v",
				sh, n, keys, fair, counts)
		}
	}
}

func TestRingMinimalMovement(t *testing.T) {
	// Growing 3 → 4 shards must move roughly 1/4 of the keyspace — the
	// consistent-hashing guarantee. A modulo partitioner would move ~3/4.
	const keys = 10000
	r3 := NewRing(3, 0)
	r4 := NewRing(4, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("account-%d", i)
		before, after := r3.Shard(key), r4.Shard(key)
		if before != after {
			moved++
			// Keys only ever move TO the new shard; an account hopping
			// between surviving shards would churn duplicate guards for
			// no reason.
			if after != 3 {
				t.Fatalf("key %q moved %d → %d, not to the new shard", key, before, after)
			}
		}
	}
	if moved < keys/10 || moved > keys*4/10 {
		t.Errorf("growing 3→4 shards moved %d of %d keys, want ≈%d", moved, keys, keys/4)
	}
}

// TestRingReplicasDistinctShards: the replica walk must place a key's N
// replicas on N distinct shards — two replicas of one group sharing a
// shard would die together — with the first replica equal to Shard(key),
// and n above the shard count clamps rather than repeats.
func TestRingReplicasDistinctShards(t *testing.T) {
	r := NewRing(5, 0)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("account-%d", i)
		for n := 1; n <= 7; n++ {
			reps := r.Replicas(key, n)
			want := n
			if want > 5 {
				want = 5 // clamped to the shard count
			}
			if len(reps) != want {
				t.Fatalf("Replicas(%q, %d) returned %d shards, want %d", key, n, len(reps), want)
			}
			if reps[0] != r.Shard(key) {
				t.Fatalf("Replicas(%q, %d)[0] = %d, want owner %d", key, n, reps[0], r.Shard(key))
			}
			seen := make(map[int]bool, len(reps))
			for _, sh := range reps {
				if sh < 0 || sh >= 5 {
					t.Fatalf("Replicas(%q, %d) produced out-of-range shard %d", key, n, sh)
				}
				if seen[sh] {
					t.Fatalf("Replicas(%q, %d) = %v places two replicas on shard %d", key, n, reps, sh)
				}
				seen[sh] = true
			}
		}
	}
	// Replicas(key, 1) must agree with Shard on every key — it is the
	// same successor walk.
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("solo-%d", i)
		if got := r.Replicas(key, 1); len(got) != 1 || got[0] != r.Shard(key) {
			t.Fatalf("Replicas(%q, 1) = %v, Shard = %d", key, got, r.Shard(key))
		}
	}
}

// TestRingReplicasMinimalMovement: adding a shard to a replicated ring
// keeps replica placement stable — a key's replica set changes only when
// the new shard captured one of its segments, and the union of moved
// replica slots stays near the consistent-hashing bound (≈ r/N of all
// slots for r replicas), nowhere near the near-total reshuffle a modulo
// partitioner would cause.
func TestRingReplicasMinimalMovement(t *testing.T) {
	const keys = 10000
	const nrep = 2
	r4 := NewRing(4, 0)
	r5 := NewRing(5, 0)
	movedSlots, totalSlots := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("account-%d", i)
		before, after := r4.Replicas(key, nrep), r5.Replicas(key, nrep)
		inBefore := make(map[int]bool, nrep)
		for _, sh := range before {
			inBefore[sh] = true
		}
		for _, sh := range after {
			totalSlots++
			if !inBefore[sh] {
				movedSlots++
				// New homes are only ever the new shard: surviving shards
				// never trade replicas among themselves.
				if sh != 4 {
					t.Fatalf("key %q replica moved to surviving shard %d (before %v, after %v)",
						key, sh, before, after)
				}
			}
		}
	}
	// Expected: each of the nrep replica slots independently lands on the
	// new shard for ~1/5 of keys, so ~nrep/5 of slots move. Allow a wide
	// band; the failure mode guarded against is wholesale reshuffling.
	expect := totalSlots / 5
	if movedSlots > expect*2 {
		t.Errorf("growing 4→5 shards moved %d of %d replica slots, want ≈%d — replica placement is not minimal",
			movedSlots, totalSlots, expect)
	}
	if movedSlots == 0 {
		t.Error("growing 4→5 shards moved nothing: the new shard owns no replicas")
	}
}

func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 4)
	for i := 0; i < 100; i++ {
		if sh := r.Shard(fmt.Sprintf("k%d", i)); sh != 0 {
			t.Fatalf("single-shard ring placed key on shard %d", sh)
		}
	}
}

func TestRingPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0, 0) did not panic")
		}
	}()
	NewRing(0, 0)
}
