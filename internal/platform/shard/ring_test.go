package shard

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a := NewRing(3, 0)
	b := NewRing(3, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("account-%d", i)
		if a.Shard(key) != b.Shard(key) {
			t.Fatalf("ring placement for %q differs between identical rings: %d vs %d",
				key, a.Shard(key), b.Shard(key))
		}
	}
	if a.Shards() != 3 {
		t.Errorf("Shards() = %d, want 3", a.Shards())
	}
}

func TestRingBalance(t *testing.T) {
	const keys = 10000
	r := NewRing(4, 0)
	counts := make([]int, 4)
	for i := 0; i < keys; i++ {
		counts[r.Shard(fmt.Sprintf("account-%d", i))]++
	}
	// With 128 vnodes per shard the expected imbalance is a few percent;
	// allow a generous ±40% of the fair share before calling it broken.
	fair := keys / 4
	for sh, n := range counts {
		if n < fair*6/10 || n > fair*14/10 {
			t.Errorf("shard %d owns %d of %d keys (fair share %d): ring is unbalanced %v",
				sh, n, keys, fair, counts)
		}
	}
}

func TestRingMinimalMovement(t *testing.T) {
	// Growing 3 → 4 shards must move roughly 1/4 of the keyspace — the
	// consistent-hashing guarantee. A modulo partitioner would move ~3/4.
	const keys = 10000
	r3 := NewRing(3, 0)
	r4 := NewRing(4, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("account-%d", i)
		before, after := r3.Shard(key), r4.Shard(key)
		if before != after {
			moved++
			// Keys only ever move TO the new shard; an account hopping
			// between surviving shards would churn duplicate guards for
			// no reason.
			if after != 3 {
				t.Fatalf("key %q moved %d → %d, not to the new shard", key, before, after)
			}
		}
	}
	if moved < keys/10 || moved > keys*4/10 {
		t.Errorf("growing 3→4 shards moved %d of %d keys, want ≈%d", moved, keys, keys/4)
	}
}

func TestRingSingleShard(t *testing.T) {
	r := NewRing(1, 4)
	for i := 0; i < 100; i++ {
		if sh := r.Shard(fmt.Sprintf("k%d", i)); sh != 0 {
			t.Fatalf("single-shard ring placed key on shard %d", sh)
		}
	}
}

func TestRingPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0, 0) did not panic")
		}
	}()
	NewRing(0, 0)
}
