package platform

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/obs"
)

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := newGate(3, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := g.acquire(ctx, 1, 0); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	// Full, no queue room: immediate shed.
	if err := g.acquire(ctx, 1, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity acquire = %v, want ErrOverloaded", err)
	}
	g.release(1)
	if err := g.acquire(ctx, 1, 0); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestGateWeightClampedToCapacity(t *testing.T) {
	g := newGate(2, 0)
	// A weight-4 route on a capacity-2 gate must still be admittable.
	if err := g.acquire(context.Background(), 4, 0); err != nil {
		t.Fatalf("clamped acquire: %v", err)
	}
	if err := g.acquire(context.Background(), 1, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatal("gate should be saturated by the clamped heavy request")
	}
	g.release(2) // released at the clamped weight
	if inUse, _ := g.load(); inUse != 0 {
		t.Fatalf("inUse = %d after release", inUse)
	}
}

func TestGateQueueGrantsFIFO(t *testing.T) {
	g := newGate(1, 4)
	ctx := context.Background()
	if err := g.acquire(ctx, 1, 0); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := g.acquire(ctx, 1, 5*time.Second); err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			order <- id
			g.release(1)
		}(i)
		// Deterministic queue order: wait for waiter i to be queued.
		for {
			if _, queued := g.load(); queued >= i {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	g.release(1)
	wg.Wait()
	close(order)
	var got []int
	for id := range order {
		got = append(got, id)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("grant order = %v, want [1 2]", got)
	}
}

func TestGateQueueTimeoutSheds(t *testing.T) {
	g := newGate(1, 4)
	ctx := context.Background()
	if err := g.acquire(ctx, 1, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := g.acquire(ctx, 1, 20*time.Millisecond)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wait budget not enforced: %v", elapsed)
	}
	// The timed-out waiter must have withdrawn from the queue.
	if _, queued := g.load(); queued != 0 {
		t.Fatalf("queued = %d after timeout, waiter leaked", queued)
	}
}

func TestGateQueueFullSheds(t *testing.T) {
	g := newGate(1, 1)
	ctx := context.Background()
	if err := g.acquire(ctx, 1, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.acquire(ctx, 1, time.Second) }()
	for {
		if _, queued := g.load(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !g.saturated() {
		t.Fatal("gate with full capacity and full queue must report saturated")
	}
	// Queue is full: the next arrival sheds immediately.
	if err := g.acquire(ctx, 1, time.Second); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full acquire = %v", err)
	}
	g.release(1)
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	g.release(1)
}

func TestGateCancelledWaiterWithdraws(t *testing.T) {
	g := newGate(1, 4)
	if err := g.acquire(context.Background(), 1, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.acquire(ctx, 1, time.Minute) }()
	for {
		if _, queued := g.load(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-done
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cancelled waiter err = %v, want ErrOverloaded wrap", err)
	}
	if _, queued := g.load(); queued != 0 {
		t.Fatalf("queued = %d, cancelled waiter leaked", queued)
	}
}

func TestAccountLimiterTokenBucket(t *testing.T) {
	l := newAccountLimiter(10, 2) // 10/s, burst 2
	clk := &testClock{t: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)}
	l.now = clk.now

	// Burst drains, third request refused with a sensible wait.
	for i := 0; i < 2; i++ {
		if _, ok := l.allow("alice"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	wait, ok := l.allow("alice")
	if ok {
		t.Fatal("third request inside the same instant must be refused")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("wait = %v, want ~100ms", wait)
	}
	// Other accounts are unaffected.
	if _, ok := l.allow("bob"); !ok {
		t.Fatal("independent account throttled")
	}
	// Refill restores tokens.
	clk.advance(200 * time.Millisecond)
	if _, ok := l.allow("alice"); !ok {
		t.Fatal("refilled bucket still refusing")
	}
}

func TestRetryAfterValueRoundsUpToAtLeastOne(t *testing.T) {
	for _, tc := range []struct {
		wait time.Duration
		want string
	}{
		{0, "1"}, {50 * time.Millisecond, "1"}, {time.Second, "1"}, {1100 * time.Millisecond, "2"},
	} {
		if got := retryAfterValue(tc.wait); got != tc.want {
			t.Errorf("retryAfterValue(%v) = %q, want %q", tc.wait, got, tc.want)
		}
	}
}

// newLimitedServer builds a server with explicit limits and a hermetic
// registry, returning the server value itself for white-box access to the
// gate.
func newLimitedServer(t *testing.T, limits ServerLimits) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s := NewServerWithOptions(NewLocalStore(testTasks(2)), ServerOptions{Registry: reg, Limits: limits})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv, reg
}

func TestOverloadShedsWith503AndRetryAfter(t *testing.T) {
	s, srv, reg := newLimitedServer(t, ServerLimits{
		MaxConcurrent: 2,
		MaxQueue:      1,
		QueueTimeout:  50 * time.Millisecond,
	})

	// Saturate the gate directly — equivalent to slow in-flight requests
	// holding all capacity, without needing real slow handlers.
	if err := s.gate.acquire(context.Background(), 2, 0); err != nil {
		t.Fatal(err)
	}
	blocker := make(chan error, 1)
	go func() { blocker <- s.gate.acquire(context.Background(), 1, time.Minute) }()
	for {
		if _, queued := s.gate.load(); queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// /readyz flips to 503 while saturated; /healthz stays 200.
	resp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d while saturated, want 503", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200 always", resp.StatusCode)
	}

	// A real request sheds within its bounded wait, with the wire contract.
	start := time.Now()
	resp, err = srv.Client().Get(srv.URL + "/v1/tasks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shed took %v, wait budget not bounded", elapsed)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	var body ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Code != CodeOverloaded {
		t.Fatalf("code = %q, want %q", body.Code, CodeOverloaded)
	}
	if !errors.Is(&APIError{Code: body.Code, Status: resp.StatusCode}, ErrOverloaded) {
		t.Fatal("overloaded code does not unwrap to ErrOverloaded")
	}

	// The shed landed in the counters, visible on both metrics endpoints.
	if got := reg.Counter("http.shed.overload").Value(); got < 1 {
		t.Fatalf("http.shed.overload = %d, want >= 1", got)
	}
	snapResp, err := srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer snapResp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(snapResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["http.shed.overload"] < 1 {
		t.Fatalf("/v1/metrics http.shed.overload = %d", snap.Counters["http.shed.overload"])
	}
	promResp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	text, _ := io.ReadAll(promResp.Body)
	if !strings.Contains(string(text), "http_shed_overload") {
		t.Fatal("/metrics missing http_shed_overload")
	}

	// Drain: release capacity, readiness recovers, traffic flows again.
	s.gate.release(2)
	if err := <-blocker; err != nil {
		t.Fatal(err)
	}
	s.gate.release(1)
	resp, err = srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d after drain, want 200", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/v1/tasks")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tasks after drain = %d", resp.StatusCode)
	}
}

func TestRateLimitReturns429WithRetryAfter(t *testing.T) {
	_, srv, reg := newLimitedServer(t, ServerLimits{RatePerSec: 1, RateBurst: 2})
	client := NewClient(srv.URL, WithHTTPClient(srv.Client()))
	ctx := context.Background()

	// The burst is fine...
	for i := 0; i < 2; i++ {
		if err := client.Submit(ctx, SubmissionRequest{Account: "alice", Task: i, Value: 1, Time: at(i)}); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	// ...the next submission trips the bucket. Raw request so the client's
	// Retry-After honoring doesn't stall the test.
	status, body := postRaw(t, srv, "/v1/submissions", `{"account":"alice","task":0,"value":2}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	if body.Code != CodeRateLimited {
		t.Fatalf("code = %q, want %q", body.Code, CodeRateLimited)
	}
	if !errors.Is(&APIError{Code: body.Code, Status: status}, ErrRateLimited) {
		t.Fatal("rate_limited code does not unwrap to ErrRateLimited")
	}
	if got := reg.Counter("http.shed.rate_limited").Value(); got != 1 {
		t.Fatalf("http.shed.rate_limited = %d, want 1", got)
	}
	// Other accounts are not collateral damage.
	if err := client.Submit(ctx, SubmissionRequest{Account: "bob", Task: 0, Value: 1, Time: at(9)}); err != nil {
		t.Fatalf("independent account throttled: %v", err)
	}
}

func TestRequestDeadlinePropagatesToAggregation(t *testing.T) {
	// A tiny RequestTimeout must bound even the aggregation route — the
	// framework degrades or the context refuses, but the server answers
	// promptly either way and never 200-by-hanging.
	_, srv, _ := newLimitedServer(t, ServerLimits{RequestTimeout: 50 * time.Millisecond})
	client := NewClient(srv.URL, WithHTTPClient(srv.Client()))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		acct := string(rune('a' + i))
		if err := client.Submit(ctx, SubmissionRequest{Account: acct, Task: 0, Value: float64(-70 - i), Time: at(i)}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	resp, err := client.Aggregate(ctx, "td-ts")
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("aggregate ran %v past a 50ms deadline", elapsed)
	}
	// Either outcome is acceptable under an aggressive deadline: a
	// (possibly degraded) answer, or a clean overloaded rejection.
	if err != nil {
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("err = %v, want nil or ErrOverloaded", err)
		}
		return
	}
	if len(resp.Truths) == 0 {
		t.Fatal("aggregation answered with no truths")
	}
}

func TestDrainingFlipsReadyz(t *testing.T) {
	s, srv, _ := newLimitedServer(t, ServerLimits{})
	check := func(want int) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("/readyz = %d, want %d", resp.StatusCode, want)
		}
	}
	check(http.StatusOK)
	s.SetDraining(true)
	check(http.StatusServiceUnavailable)
	// In-flight traffic still completes while draining.
	resp, err := srv.Client().Get(srv.URL + "/v1/tasks")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tasks while draining = %d, want 200", resp.StatusCode)
	}
	s.SetDraining(false)
	check(http.StatusOK)
}

func TestZeroLimitsDisableProtection(t *testing.T) {
	// The zero value must behave exactly like the pre-protection server:
	// no gate, no limiter, no deadline.
	s := NewServerWithOptions(NewLocalStore(testTasks(1)), ServerOptions{Registry: obs.NewRegistry()})
	if s.gate != nil || s.limiter != nil {
		t.Fatal("zero-valued limits built protection state")
	}
	if s.limits.enabled() {
		t.Fatal("zero-valued limits report enabled")
	}
}
