package platform

import (
	"fmt"
	"sync"
	"testing"

	"sybiltd/internal/obs"
)

// BenchmarkStream measures truth-stream fan-out at 1, 100, and 1000
// subscribers: reports are fed through the hub while every subscriber
// drains as fast as Go scheduling allows. Reported metrics:
//
//   - pushed-updates/sec: updates actually delivered into subscriber
//     buffers and taken, summed across all subscribers.
//   - drop-rate: dropped / (pushed + dropped) — the share of updates
//     coalesced away by latest-wins replacement. Rises with subscriber
//     count as scheduling lag leaves pendings undrained between
//     estimates; it is load shedding, not data loss, since every
//     subscriber always holds the latest value per task.
//
// Run via `make bench-stream`; the raw test2json stream lands in
// BENCH_stream.json for trend tracking, mirroring BENCH_ingest.json.
func BenchmarkStream(b *testing.B) {
	for _, subs := range []int{1, 100, 1000} {
		b.Run(fmt.Sprintf("subscribers-%d", subs), func(b *testing.B) {
			benchStreamFanout(b, subs)
		})
	}
}

func benchStreamFanout(b *testing.B, numSubs int) {
	const numTasks = 8
	reg := obs.NewRegistry()
	hub, err := NewStreamHub(numTasks, StreamConfig{Epsilon: 1e-12, MaxSubscribers: -1}, reg)
	if err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < numSubs; i++ {
		sub, err := hub.Subscribe(0)
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(sub *Subscription) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					sub.Take() // final drain so late pushes count
					return
				case <-sub.Notify():
					sub.Take()
				}
			}
		}(sub)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Feed([]BatchSubmission{{
			Account: fmt.Sprintf("a%05d", i%4096),
			Task:    i % numTasks,
			Value:   float64(i % 997),
		}})
	}
	// Close the hub first: it runs any pending estimate's broadcast before
	// the loop exits, then the drain goroutines take the tail.
	hub.Close()
	b.StopTimer()
	close(stop)
	wg.Wait()

	pushed := reg.Counter("stream.pushed_updates").Value()
	dropped := reg.Counter("stream.dropped_updates").Value()
	b.ReportMetric(float64(pushed)/b.Elapsed().Seconds(), "pushed-updates/sec")
	if total := pushed + dropped; total > 0 {
		b.ReportMetric(float64(dropped)/float64(total), "drop-rate")
	}
}
