package platform

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
)

// APIError is a structured platform error decoded from the JSON error
// body. Code is the stable machine-readable contract; callers should
// branch with errors.Is against the platform sentinel errors (APIError
// unwraps to the sentinel its code maps to) or by inspecting Code, never
// by matching Message text.
type APIError struct {
	// Code is the stable wire code (see the Code* constants); empty when
	// the server sent no structured body.
	Code string
	// Message is the human-readable error text.
	Message string
	// Status is the HTTP status code.
	Status int
	// RingVersion accompanies CodeWrongShard: the ring version the
	// refusing shard was fenced at.
	RingVersion uint64
}

// Error implements error.
func (e *APIError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("HTTP %d (%s)", e.Status, e.Code)
	}
	return fmt.Sprintf("%s (HTTP %d, %s)", e.Message, e.Status, e.Code)
}

// Unwrap maps the wire code back to its typed sentinel, so
// errors.Is(err, platform.ErrUnknownTask) holds across the HTTP boundary.
// A wrong_shard unwraps to the typed *WrongShardError so errors.As
// recovers the ring version the shard advertised.
func (e *APIError) Unwrap() error {
	if e.Code == CodeWrongShard {
		return &WrongShardError{RingVersion: e.RingVersion}
	}
	return sentinelForCode(e.Code)
}

// ClientConfig tunes a Client beyond the defaults.
type ClientConfig struct {
	// HTTPClient performs the requests; nil means a default client with a
	// 10 s timeout.
	HTTPClient *http.Client
	// MaxRetries is the number of additional attempts after the first one
	// fails with a connection error, a 5xx response, a torn response body,
	// or a rate-limit 429 (one carrying Retry-After or the rate_limited
	// code). Other 4xx responses are never retried: the request is wrong,
	// not the network. Zero disables retries.
	MaxRetries int
	// RetryBaseDelay is the backoff before the first retry; it doubles
	// per attempt. Zero means 100 ms.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff. Zero means 2 s. A server-advertised
	// Retry-After longer than the cap is still honored in full: hammering
	// a shedding server early is worse than waiting.
	RetryMaxDelay time.Duration
	// BreakerThreshold opens the client's circuit breaker after this many
	// consecutive transport-level failures (connection errors, 5xx, torn
	// response bodies). While open, calls fail fast with ErrCircuitOpen
	// instead of touching the network; after BreakerCooldown one probe is
	// let through and its outcome closes or reopens the circuit. Zero
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay. Zero means 1 s.
	BreakerCooldown time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 10 * time.Second}
	}
	if c.RetryBaseDelay == 0 {
		c.RetryBaseDelay = 100 * time.Millisecond
	}
	if c.RetryMaxDelay == 0 {
		c.RetryMaxDelay = 2 * time.Second
	}
	return c
}

// Client is a typed HTTP client for the platform API, used by cmd/mcsagent
// and integration tests. It targets one or more equivalent endpoints
// (e.g. replicas of the shard router): transport-level failures rotate to
// the next endpoint before the retry loop's next attempt.
type Client struct {
	cfg     ClientConfig
	breaker *breaker // nil when BreakerThreshold == 0

	// ringVersion, when non-zero, is stamped on every request as the
	// X-Ring-Version header — the router's claim about which ring topology
	// it routed with. Shards fenced at a higher version refuse stamped
	// mutations with wrong_shard, which is what stops a router that missed
	// an online-reshard cutover from writing through a stale topology. The
	// sharded store bumps it on every topology install.
	ringVersion atomic.Uint64

	mu      sync.Mutex
	bases   []string   // endpoint rotation, guarded by mu
	baseIdx int        // index of the endpoint in use
	rng     *rand.Rand // jitter source, guarded by mu
}

// SetRingVersion sets the ring version stamped on subsequent requests
// (0 = no stamp).
func (c *Client) SetRingVersion(v uint64) { c.ringVersion.Store(v) }

// RingVersion returns the currently stamped ring version.
func (c *Client) RingVersion() uint64 { return c.ringVersion.Load() }

// Option configures NewClient.
type Option func(*clientSettings)

type clientSettings struct {
	cfg       ClientConfig
	endpoints []string
}

// WithHTTPClient sets the *http.Client performing requests; the default
// has a 10 s timeout.
func WithHTTPClient(hc *http.Client) Option {
	return func(s *clientSettings) { s.cfg.HTTPClient = hc }
}

// WithEndpoints adds fallback endpoints after NewClient's primary. The
// client uses one endpoint at a time and rotates on transport-level
// failures (connection errors, 5xx, torn bodies).
func WithEndpoints(endpoints ...string) Option {
	return func(s *clientSettings) { s.endpoints = append(s.endpoints, endpoints...) }
}

// WithRetries sets the number of additional attempts after a retryable
// failure (see ClientConfig.MaxRetries).
func WithRetries(n int) Option {
	return func(s *clientSettings) { s.cfg.MaxRetries = n }
}

// WithBackoff sets the retry backoff range (see ClientConfig
// RetryBaseDelay/RetryMaxDelay; zero keeps the default for that bound).
func WithBackoff(base, max time.Duration) Option {
	return func(s *clientSettings) {
		s.cfg.RetryBaseDelay = base
		s.cfg.RetryMaxDelay = max
	}
}

// WithBreaker enables the client circuit breaker (see ClientConfig
// BreakerThreshold/BreakerCooldown).
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(s *clientSettings) {
		s.cfg.BreakerThreshold = threshold
		s.cfg.BreakerCooldown = cooldown
	}
}

// WithConfig replaces the whole ClientConfig at once; options applied
// after it refine it field by field.
func WithConfig(cfg ClientConfig) Option {
	return func(s *clientSettings) { s.cfg = cfg }
}

// NewClient targets endpoint (e.g. "http://localhost:8080") — a single
// node or the shard router; the wire API is identical. With no options
// there are no retries and a default HTTP client with a 10 s timeout.
func NewClient(endpoint string, opts ...Option) *Client {
	set := clientSettings{endpoints: []string{endpoint}}
	for _, o := range opts {
		o(&set)
	}
	return newClient(set.endpoints, set.cfg)
}

// NewClientWithConfig targets baseURL with explicit retry/transport
// configuration. It is the pre-options constructor, kept as a thin shim
// over NewClient(baseURL, WithConfig(cfg)).
func NewClientWithConfig(baseURL string, cfg ClientConfig) *Client {
	return newClient([]string{baseURL}, cfg)
}

func newClient(endpoints []string, cfg ClientConfig) *Client {
	bases := make([]string, len(endpoints))
	for i, e := range endpoints {
		bases[i] = strings.TrimRight(e, "/")
	}
	c := &Client{
		bases: bases,
		cfg:   cfg.withDefaults(),
		rng:   rand.New(rand.NewSource(jitterSeed())),
	}
	if cfg.BreakerThreshold > 0 {
		c.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	return c
}

// currentBase returns the endpoint in use.
func (c *Client) currentBase() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bases[c.baseIdx]
}

// rotateBase advances to the next endpoint, but only if the failing
// endpoint is still the current one — concurrent failures on the same
// endpoint rotate once, not once each.
func (c *Client) rotateBase(failed string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.bases) > 1 && c.bases[c.baseIdx] == failed {
		c.baseIdx = (c.baseIdx + 1) % len(c.bases)
	}
}

// Endpoints returns the client's endpoint rotation, current first.
func (c *Client) Endpoints() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.bases))
	out = append(out, c.bases[c.baseIdx:]...)
	out = append(out, c.bases[:c.baseIdx]...)
	return out
}

// jitterSeed seeds the backoff-jitter RNG from crypto/rand. A wall-clock
// seed would hand a fleet of agents launched in the same instant identical
// jitter sequences — synchronized retries are exactly what the jitter
// exists to break up. Falls back to the clock only if the system entropy
// source fails.
func jitterSeed() int64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return time.Now().UnixNano()
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// BreakerState reports the circuit breaker's current state. Without a
// configured breaker (BreakerThreshold == 0) it is always BreakerClosed.
func (c *Client) BreakerState() BreakerState {
	if c.breaker == nil {
		return BreakerClosed
	}
	return c.breaker.currentState()
}

// Tasks lists the published tasks.
func (c *Client) Tasks(ctx context.Context) ([]TaskDTO, error) {
	var out []TaskDTO
	if err := c.do(ctx, http.MethodGet, "/v1/tasks", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Submit reports one observation. Non-finite values are rejected
// client-side with ErrMalformedRequest — JSON cannot carry NaN/Inf, and
// the server would reject them identically, so the client gives the same
// answer without the round trip.
func (c *Client) Submit(ctx context.Context, req SubmissionRequest) error {
	if math.IsNaN(req.Value) || math.IsInf(req.Value, 0) {
		return fmt.Errorf("%w: non-finite observation value %v", ErrMalformedRequest, req.Value)
	}
	return c.do(ctx, http.MethodPost, "/v1/submissions", req, nil)
}

// SubmitBatch reports many observations in one POST /v1/reports:batch
// call: one round trip and, on a durable platform, one WAL write + one
// fsync for the whole batch. The results are positional. A nil error
// means the envelope was processed — individual items may still have been
// rejected; check each BatchItemResult.Err().
func (c *Client) SubmitBatch(ctx context.Context, reports []SubmissionRequest) ([]BatchItemResult, error) {
	// JSON cannot carry NaN/Inf: screen non-finite values client-side into
	// per-item malformed_request rejections (the server's verdict for
	// them), sending only the finite items, so one bad value cannot fail
	// the whole envelope at the marshal step.
	results := make([]BatchItemResult, len(reports))
	finite := make([]SubmissionRequest, 0, len(reports))
	finiteIdx := make([]int, 0, len(reports))
	for i, r := range reports {
		if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) {
			results[i] = BatchItemResult{
				Status: "rejected",
				Code:   CodeMalformedRequest,
				Error:  fmt.Sprintf("non-finite observation value %v", r.Value),
			}
			continue
		}
		finite = append(finite, r)
		finiteIdx = append(finiteIdx, i)
	}
	if len(finite) == 0 {
		return results, nil
	}
	var out BatchSubmissionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/reports:batch", BatchSubmissionRequest{Reports: finite}, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(finite) {
		return nil, fmt.Errorf("platform client: batch returned %d results for %d reports", len(out.Results), len(finite))
	}
	for j, i := range finiteIdx {
		results[i] = out.Results[j]
	}
	return results, nil
}

// RecordFingerprint uploads a sign-in motion capture.
func (c *Client) RecordFingerprint(ctx context.Context, account string, rec mems.Recording) error {
	req := FingerprintRequest{
		Account:    account,
		SampleRate: rec.SampleRate,
		AccelX:     rec.AccelX, AccelY: rec.AccelY, AccelZ: rec.AccelZ,
		GyroX: rec.GyroX, GyroY: rec.GyroY, GyroZ: rec.GyroZ,
	}
	return c.do(ctx, http.MethodPost, "/v1/fingerprints", req, nil)
}

// RecordFeatureFingerprint uploads an already-extracted fingerprint
// feature vector (the replay/import path).
func (c *Client) RecordFeatureFingerprint(ctx context.Context, account string, features []float64) error {
	req := FingerprintRequest{Account: account, Features: features}
	return c.do(ctx, http.MethodPost, "/v1/fingerprints", req, nil)
}

// Aggregate runs an aggregation method on the platform.
func (c *Client) Aggregate(ctx context.Context, method string) (AggregateResponse, error) {
	var out AggregateResponse
	err := c.do(ctx, http.MethodPost, "/v1/aggregate", AggregateRequest{Method: method}, &out)
	return out, err
}

// Metrics fetches the platform's metrics snapshot from /v1/metrics.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var out MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &out)
	return out, err
}

// Dataset downloads the full campaign snapshot in the mcs JSON schema.
func (c *Client) Dataset(ctx context.Context) (*mcs.Dataset, error) {
	base := c.currentBase()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/dataset", nil)
	if err != nil {
		return nil, fmt.Errorf("platform client: request: %w", err)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		c.rotateBase(base)
		return nil, fmt.Errorf("platform client: GET /v1/dataset: %w", err)
	}
	defer drainBody(resp.Body)
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("platform client: GET /v1/dataset: %w", decodeAPIError(resp))
	}
	ds, err := mcs.DecodeJSON(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("platform client: %w", err)
	}
	return ds, nil
}

// Stats fetches store counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Ready probes GET /readyz once — no retry, no circuit breaker: a health
// probe reports, it does not heal. A decodable answer is returned with a
// nil error whatever its status ("ready", "draining", "overloaded",
// "degraded" — with the per-shard breakdown on a router); the error is
// non-nil only when the endpoint is unreachable or the body torn.
func (c *Client) Ready(ctx context.Context) (ReadyzResponse, error) {
	base := c.currentBase()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return ReadyzResponse{}, fmt.Errorf("platform client: request: %w", err)
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		c.rotateBase(base)
		return ReadyzResponse{}, fmt.Errorf("platform client: GET /readyz: %w", err)
	}
	defer drainBody(resp.Body)
	var out ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return ReadyzResponse{}, fmt.Errorf("platform client: GET /readyz: decode: %w", err)
	}
	return out, nil
}

// ReplShip pushes WAL frames (or a snapshot) to a replica follower and
// returns its durable cursor. Primaries use it; it is exported so tests
// and operational tooling can drive the protocol directly.
func (c *Client) ReplShip(ctx context.Context, req ReplShipRequest) (ReplShipResponse, error) {
	var out ReplShipResponse
	err := c.do(ctx, http.MethodPost, "/v1/repl/frames", req, &out)
	return out, err
}

// ReplStatus reads a node's replication state (role, epoch, durable
// sequence number, follower cursors).
func (c *Client) ReplStatus(ctx context.Context) (ReplStatusResponse, error) {
	var out ReplStatusResponse
	err := c.do(ctx, http.MethodGet, "/v1/repl/status", nil, &out)
	return out, err
}

// ReplSetRole flips a node's replica role — the router's failover lever.
// The response is the node's post-flip status.
func (c *Client) ReplSetRole(ctx context.Context, req ReplRoleRequest) (ReplStatusResponse, error) {
	var out ReplStatusResponse
	err := c.do(ctx, http.MethodPost, "/v1/repl/role", req, &out)
	return out, err
}

// ReplExport reads a node's decoded WAL records after req.FromSeq — the
// migration coordinator's catch-up tail during an online reshard.
func (c *Client) ReplExport(ctx context.Context, req ExportRequest) (ExportBatch, error) {
	var out ExportBatch
	err := c.do(ctx, http.MethodPost, "/v1/repl/export", req, &out)
	return out, err
}

// Fence tells a node to refuse further mutations for the given accounts
// with wrong_shard at the given ring version — the cutover step of an
// online reshard. Idempotent: re-fencing the same accounts at the same
// (or lower) version is a no-op.
func (c *Client) Fence(ctx context.Context, req FenceRequest) (FenceResponse, error) {
	var out FenceResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/fence", req, &out)
	return out, err
}

// PurgeFenced tells a node to drop the data of every account fenced at or
// below the given ring version, keeping the fence — the post-migration GC
// (see FencePurger). Idempotent: a repeat purge finds nothing to drop.
func (c *Client) PurgeFenced(ctx context.Context, req PurgeRequest) (PurgeResponse, error) {
	var out PurgeResponse
	err := c.do(ctx, http.MethodPost, "/v1/admin/purge", req, &out)
	return out, err
}

// attemptResult classifies one request attempt for the retry loop and the
// circuit breaker.
type attemptResult struct {
	err error
	// retryable: connection errors, 5xx, torn response bodies, and
	// rate-limit 429s (which carry a Retry-After or the rate_limited
	// code). Other 4xx are never retried: the request is wrong, not the
	// network.
	retryable bool
	// retryAfter is the server-advertised minimum wait (from the
	// Retry-After header), honored in full before the next attempt.
	retryAfter time.Duration
	// transportFailure marks failures that count toward the breaker:
	// connection errors, 5xx, torn bodies. Any decoded HTTP response < 500
	// proves the server alive, so 4xx (even 429) is breaker-success.
	transportFailure bool
}

// do performs one API call with bounded retry: connection errors, 5xx
// responses, and torn bodies back off exponentially (with jitter) up to
// MaxRetries extra attempts; rate-limit 429s retry no earlier than the
// advertised Retry-After; other 4xx responses return immediately as
// *APIError. The circuit breaker, when configured, is consulted before
// and updated after every attempt.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("platform client: marshal: %w", err)
		}
		payload = buf
	}

	for attempt := 0; ; attempt++ {
		if c.breaker != nil {
			if err := c.breaker.allow(); err != nil {
				return fmt.Errorf("platform client: %s %s: %w", method, path, err)
			}
		}
		base := c.currentBase()
		res := c.attempt(ctx, base, method, path, payload, out)
		if c.breaker != nil {
			c.breaker.record(!res.transportFailure)
		}
		if res.transportFailure {
			// The endpoint itself failed (connection error, 5xx, torn
			// body); with fallback endpoints configured the next attempt
			// goes elsewhere.
			c.rotateBase(base)
		}
		if res.err == nil {
			return nil
		}
		lastErr := fmt.Errorf("platform client: %s %s: %w", method, path, res.err)
		if !res.retryable || attempt >= c.cfg.MaxRetries {
			return lastErr
		}
		if err := c.sleep(ctx, attempt, res.retryAfter); err != nil {
			return fmt.Errorf("platform client: %s %s: retry aborted: %w", method, path, err)
		}
	}
}

// attempt performs a single request against base.
func (c *Client) attempt(ctx context.Context, base, method, path string, payload []byte, out any) attemptResult {
	var reader io.Reader
	if payload != nil {
		reader = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, reader)
	if err != nil {
		return attemptResult{err: err}
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if v := c.ringVersion.Load(); v != 0 {
		req.Header.Set(RingVersionHeader, strconv.FormatUint(v, 10))
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		// Connection-level failure. Retrying a cancelled context is
		// pointless, so surface it immediately.
		if ctx.Err() != nil {
			return attemptResult{err: err, transportFailure: true}
		}
		return attemptResult{err: err, retryable: true, transportFailure: true}
	}
	// Every branch below — success, decode failure, the Retry-After and
	// torn-body paths — leaves resp.Body to this one deferred drain+close,
	// so a retry loop never strands a connection in the transport pool.
	defer drainBody(resp.Body)
	if resp.StatusCode >= 400 {
		retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		apiErr := decodeAPIError(resp)
		res := attemptResult{err: apiErr, retryAfter: retryAfter}
		switch {
		case resp.StatusCode == http.StatusNotImplemented:
			// A deliberate "this node does not serve that" answer
			// (unimplemented wire code): the server is alive and the answer
			// will not change, so neither retry nor breaker penalty.
		case isWrongShard(apiErr):
			// The shard deliberately refused: an online reshard moved the
			// account away (or our ring-version stamp is stale). Retrying the
			// same node can never succeed — the routing layer above must
			// refresh its topology and re-route. The node is alive and
			// answering, so no breaker penalty either.
		case resp.StatusCode >= 500:
			res.retryable = true
			res.transportFailure = true
		case resp.StatusCode == http.StatusTooManyRequests:
			// Retry a 429 only when it is a shed-load signal (an
			// advertised wait or the rate_limited code) — a semantic 429
			// like account_cap_reached will not clear by waiting.
			var ae *APIError
			if errors.As(apiErr, &ae) && (retryAfter > 0 || ae.Code == CodeRateLimited) {
				res.retryable = true
			}
		}
		return res
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			// A body that fails to decode on a success status is a torn
			// transfer (truncated or corrupted mid-flight), not a wrong
			// request: retryable, and a transport failure for the breaker.
			return attemptResult{err: fmt.Errorf("decode: %w", err), retryable: true, transportFailure: true}
		}
	}
	return attemptResult{}
}

// drainDiscardLimit caps how many unread body bytes a drain will consume
// to make the connection reusable. Past that, finishing the read costs
// more than a fresh connection: close and let the transport re-dial.
const drainDiscardLimit = 256 << 10

// drainBody discards the (bounded) remainder of a response body and
// closes it. Called for every response not handed back to the caller:
// an undrained body prevents the transport from reusing the connection,
// which under retry churn degrades the whole pool.
func drainBody(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, drainDiscardLimit))
	_ = body.Close()
}

// parseRetryAfter reads a Retry-After header value: either delta-seconds
// or an HTTP date. Returns 0 when absent or unparseable.
func parseRetryAfter(h string, now time.Time) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// decodeAPIError builds the *APIError for a >= 400 response, consuming
// the body.
func decodeAPIError(resp *http.Response) error {
	apiErr := &APIError{Status: resp.StatusCode}
	var body ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil {
		apiErr.Code = body.Code
		apiErr.Message = body.Error
		apiErr.RingVersion = body.RingVersion
	}
	return apiErr
}

// isWrongShard reports whether err is a wrong_shard refusal.
func isWrongShard(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeWrongShard
}

// sleep blocks for the attempt's backoff delay (exponential from
// RetryBaseDelay, capped at RetryMaxDelay, jittered to 50–100% of the
// nominal value so synchronized clients spread out) or until ctx ends,
// returning the context error in that case. A server-advertised minimum
// (Retry-After) is honored in full, uncapped and unjittered downward:
// retrying a shedding server early only deepens the overload.
func (c *Client) sleep(ctx context.Context, attempt int, minDelay time.Duration) error {
	delay := c.cfg.RetryBaseDelay << uint(attempt)
	if delay > c.cfg.RetryMaxDelay || delay <= 0 {
		delay = c.cfg.RetryMaxDelay
	}
	c.mu.Lock()
	frac := 0.5 + 0.5*c.rng.Float64()
	c.mu.Unlock()
	delay = time.Duration(float64(delay) * frac)
	if delay < minDelay {
		delay = minDelay
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
