package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
)

// Client is a typed HTTP client for the platform API, used by cmd/mcsagent
// and integration tests.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets baseURL (e.g. "http://localhost:8080"). httpClient may
// be nil for a default with a 10 s timeout.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: baseURL, http: httpClient}
}

// Tasks lists the published tasks.
func (c *Client) Tasks(ctx context.Context) ([]TaskDTO, error) {
	var out []TaskDTO
	if err := c.do(ctx, http.MethodGet, "/v1/tasks", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Submit reports one observation.
func (c *Client) Submit(ctx context.Context, req SubmissionRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/submissions", req, nil)
}

// RecordFingerprint uploads a sign-in motion capture.
func (c *Client) RecordFingerprint(ctx context.Context, account string, rec mems.Recording) error {
	req := FingerprintRequest{
		Account:    account,
		SampleRate: rec.SampleRate,
		AccelX:     rec.AccelX, AccelY: rec.AccelY, AccelZ: rec.AccelZ,
		GyroX: rec.GyroX, GyroY: rec.GyroY, GyroZ: rec.GyroZ,
	}
	return c.do(ctx, http.MethodPost, "/v1/fingerprints", req, nil)
}

// RecordFeatureFingerprint uploads an already-extracted fingerprint
// feature vector (the replay/import path).
func (c *Client) RecordFeatureFingerprint(ctx context.Context, account string, features []float64) error {
	req := FingerprintRequest{Account: account, Features: features}
	return c.do(ctx, http.MethodPost, "/v1/fingerprints", req, nil)
}

// Aggregate runs an aggregation method on the platform.
func (c *Client) Aggregate(ctx context.Context, method string) (AggregateResponse, error) {
	var out AggregateResponse
	err := c.do(ctx, http.MethodPost, "/v1/aggregate", AggregateRequest{Method: method}, &out)
	return out, err
}

// Dataset downloads the full campaign snapshot in the mcs JSON schema.
func (c *Client) Dataset(ctx context.Context) (*mcs.Dataset, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/dataset", nil)
	if err != nil {
		return nil, fmt.Errorf("platform client: request: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("platform client: GET /v1/dataset: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("platform client: GET /v1/dataset: HTTP %d", resp.StatusCode)
	}
	ds, err := mcs.DecodeJSON(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("platform client: %w", err)
	}
	return ds, nil
}

// Stats fetches store counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("platform client: marshal: %w", err)
		}
		reader = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reader)
	if err != nil {
		return fmt.Errorf("platform client: request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("platform client: %s %s: %w", method, path, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		var apiErr errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&apiErr); err == nil && apiErr.Error != "" {
			return fmt.Errorf("platform client: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("platform client: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("platform client: decode: %w", err)
		}
	}
	return nil
}
