package platform

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/truth"
)

// TruthUpdate is one on-change truth push on the GET /v1/truths:watch
// stream. Seq is a stream-wide monotone sequence number: a subscriber
// that reconnects with its last seen Seq (the SSE Last-Event-ID) receives
// exactly the tasks whose estimates changed while it was away. Round is
// the evolving-truth round the estimate belongs to.
type TruthUpdate struct {
	Seq   uint64  `json:"seq"`
	Task  int     `json:"task"`
	Value float64 `json:"value"`
	Round int     `json:"round"`

	// born stamps when the hub published the update, for the push-latency
	// histogram. Server-side only; not on the wire.
	born time.Time
}

// StreamConfig tunes the truth-watch stream hub. The zero value gives
// sensible defaults for every field.
type StreamConfig struct {
	// Buffer is the per-subscriber pending-update cap. Within the buffer
	// updates are coalesced latest-wins per task, so a buffer of at least
	// the task count (the default, Buffer == 0) guarantees a subscriber
	// always eventually sees every task's latest estimate no matter how
	// slowly it reads; a smaller buffer additionally evicts the oldest
	// pending task under pressure. An eviction is a real loss, not just
	// deferral: the evicted update's Seq is below seqs delivered later, so
	// a Last-Event-ID resume will not re-send it and the subscriber stays
	// stale on that task until its estimate next moves. Size the buffer
	// below the task count only when per-task staleness is acceptable.
	Buffer int
	// MaxSubscribers bounds concurrent subscriptions; new arrivals beyond
	// it are shed with 503 + Retry-After (wire code "overloaded"). Zero
	// means 4096; negative means unlimited.
	MaxSubscribers int
	// Epsilon is the minimum estimate movement that counts as a change
	// worth pushing; zero means 1e-9. It suppresses float-noise republish,
	// not real signal.
	Epsilon float64
	// TickEvery, when positive, advances the evolving-truth round on a
	// timer so old reports decay (truth.Online semantics). Zero disables
	// automatic rounds: every report stays at full weight.
	TickEvery time.Duration
	// Heartbeat is the idle keep-alive interval on the SSE stream (a ":"
	// comment line, invisible to the event protocol). Zero means 15s.
	Heartbeat time.Duration
	// WriteWindow bounds each wire write to a subscriber: a connection
	// that cannot accept a flush within the window is disconnected (its
	// pending buffer was already coalescing latest-wins while it stalled).
	// Zero means 30s.
	WriteWindow time.Duration
	// Online tunes the shared evolving-truth estimator. The zero value
	// uses truth.NewOnline defaults except MaxIterations, which is
	// clamped to at most 25 (explicit larger values included): the
	// estimator warm-starts from the previous truths on every report, so
	// deep refinement per report buys nothing.
	Online truth.OnlineConfig
}

func (c StreamConfig) withDefaults(numTasks int) StreamConfig {
	if c.Buffer <= 0 {
		c.Buffer = numTasks
	}
	if c.MaxSubscribers == 0 {
		c.MaxSubscribers = 4096
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-9
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 15 * time.Second
	}
	if c.WriteWindow <= 0 {
		c.WriteWindow = 30 * time.Second
	}
	if c.Online.MaxIterations == 0 || c.Online.MaxIterations > 25 {
		c.Online.MaxIterations = 25
	}
	return c
}

// StreamHub fans accepted reports out to watch subscribers as on-change
// truth updates. Every acknowledged submission (single or batch) feeds a
// shared truth.Online estimator; a single hub goroutine coalesces bursts
// of reports into one incremental re-estimate, diffs the result against
// the last published values, and pushes only the tasks that moved.
//
// Backpressure is per subscriber and never propagates: each subscription
// owns a bounded buffer with latest-wins drop-intermediate semantics
// (a pending update for the same task is replaced in place and counted
// dropped), so one stalled consumer costs one buffer, not hub progress.
type StreamHub struct {
	cfg      StreamConfig
	numTasks int

	// estMu guards the estimator, the publish state, and the sequence
	// counter. Feeders take it briefly (map writes); the hub loop takes it
	// for the re-estimate. Lock order: estMu before subMu.
	estMu   sync.Mutex
	est     *truth.Online
	dirty   bool
	lastPub []TruthUpdate // per task: last published update (Seq 0 = never)
	seq     uint64

	subMu sync.Mutex
	subs  map[*Subscription]struct{}

	wake      chan struct{}
	done      chan struct{}
	loopDone  chan struct{}
	startOnce sync.Once
	closeOnce sync.Once

	subscribers  *obs.Gauge   // stream.subscribers: current fan-out
	rejections   *obs.Counter // stream.subscribe_rejections: shed at the cap
	reports      *obs.Counter // stream.reports: accepted reports fed in
	estimates    *obs.Counter // stream.estimates: re-estimates (coalescing visibility)
	pushed       *obs.Counter // stream.pushed_updates: updates handed to subscribers
	dropped      *obs.Counter // stream.dropped_updates: coalesced/evicted before delivery
	pushLatency  obs.Timer    // stream.push_latency_seconds: publish -> wire flush
	tickDuration time.Duration
}

// NewStreamHub creates a hub over numTasks tasks, recording metrics into
// reg (nil means obs.Default()). The hub goroutine starts lazily on the
// first Subscribe, so a hub that is never watched costs one map write per
// report and no estimation at all.
func NewStreamHub(numTasks int, cfg StreamConfig, reg *obs.Registry) (*StreamHub, error) {
	if reg == nil {
		reg = obs.Default()
	}
	cfg = cfg.withDefaults(numTasks)
	est, err := truth.NewOnline(numTasks, cfg.Online)
	if err != nil {
		return nil, err
	}
	return &StreamHub{
		cfg:          cfg,
		numTasks:     numTasks,
		est:          est,
		lastPub:      make([]TruthUpdate, numTasks),
		subs:         make(map[*Subscription]struct{}),
		wake:         make(chan struct{}, 1),
		done:         make(chan struct{}),
		loopDone:     make(chan struct{}),
		subscribers:  reg.Gauge("stream.subscribers"),
		rejections:   reg.Counter("stream.subscribe_rejections"),
		reports:      reg.Counter("stream.reports"),
		estimates:    reg.Counter("stream.estimates"),
		pushed:       reg.Counter("stream.pushed_updates"),
		dropped:      reg.Counter("stream.dropped_updates"),
		pushLatency:  reg.Timer("stream.push_latency_seconds"),
		tickDuration: cfg.TickEvery,
	}, nil
}

// Feed ingests acknowledged reports into the shared estimator and marks
// it dirty; the hub loop re-estimates at its own pace, so a burst of
// submissions coalesces into one incremental recomputation. Safe for
// concurrent use; cheap enough for the ack path (map writes under a
// short-held mutex — never a full estimation).
func (h *StreamHub) Feed(items []BatchSubmission) {
	if len(items) == 0 {
		return
	}
	h.estMu.Lock()
	for _, it := range items {
		// The store validated account and task range before acknowledging;
		// a mismatch here (e.g. a task beyond the hub's range) is skipped
		// rather than poisoning the stream.
		if err := h.est.Observe(it.Account, it.Task, it.Value); err != nil {
			continue
		}
		h.dirty = true
	}
	h.estMu.Unlock()
	h.reports.Add(int64(len(items)))
	h.notifyLoop()
}

// seed preloads the estimator from an existing dataset (recovered or
// pre-stream submissions), without waking the loop: the first subscriber
// triggers the initial estimate. Pairs the estimator already holds are
// skipped: the submit listener is installed before the seeding snapshot
// is taken, so anything already present arrived via a live Feed and is
// at least as new as the snapshot — replaying the snapshot over it would
// rewind the estimator to an older value.
func (h *StreamHub) seed(ds *mcs.Dataset) {
	h.estMu.Lock()
	defer h.estMu.Unlock()
	for _, acct := range ds.Accounts {
		for _, ob := range acct.Observations {
			if h.est.Has(acct.ID, ob.Task) {
				continue
			}
			if h.est.Observe(acct.ID, ob.Task, ob.Value) == nil {
				h.dirty = true
			}
		}
	}
}

// Tick advances the evolving-truth round: existing reports age one decay
// step and the estimates are re-published if they moved. Called by the
// hub loop when TickEvery is set; exported for embedders running their
// own round cadence.
func (h *StreamHub) Tick() {
	h.estMu.Lock()
	h.est.Tick()
	h.dirty = true
	h.estMu.Unlock()
	h.notifyLoop()
}

func (h *StreamHub) notifyLoop() {
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

// Done is closed when the hub shuts down; stream handlers select on it to
// terminate their subscriptions.
func (h *StreamHub) Done() <-chan struct{} { return h.done }

// Close stops the hub loop and wakes every handler blocked on Done. Idempotent.
func (h *StreamHub) Close() {
	h.closeOnce.Do(func() {
		close(h.done)
	})
	// Only wait for the loop if it ever started.
	h.startOnce.Do(func() { close(h.loopDone) })
	<-h.loopDone
}

// Subscribe registers a watch subscription resuming after seq afterSeq
// (0 = from the beginning: the current snapshot). The subscription's
// buffer is pre-seeded with every task whose last published update is
// newer than afterSeq, so reconnecting clients catch up from state, not
// from a replay log. An afterSeq from a previous server incarnation
// (larger than anything published) falls back to the full snapshot.
func (h *StreamHub) Subscribe(afterSeq uint64) (*Subscription, error) {
	select {
	case <-h.done:
		return nil, fmt.Errorf("%w: stream hub closed", ErrOverloaded)
	default:
	}
	h.startOnce.Do(func() { go h.loop() })

	sub := &Subscription{
		hub:     h,
		buf:     h.cfg.Buffer,
		pending: make(map[int]TruthUpdate),
		notify:  make(chan struct{}, 1),
	}
	// Bring the publish state current, then seed + register under estMu so
	// no update can slip between the snapshot and the registration.
	h.estMu.Lock()
	if h.dirty {
		h.runEstimateLocked()
	}
	if afterSeq > h.seq {
		afterSeq = 0 // stale resume token from another incarnation
	}
	h.subMu.Lock()
	if h.cfg.MaxSubscribers > 0 && len(h.subs) >= h.cfg.MaxSubscribers {
		h.subMu.Unlock()
		h.estMu.Unlock()
		h.rejections.Inc()
		return nil, fmt.Errorf("%w: watch subscriber limit (%d) reached", ErrOverloaded, h.cfg.MaxSubscribers)
	}
	h.subs[sub] = struct{}{}
	h.subscribers.Set(int64(len(h.subs)))
	h.subMu.Unlock()
	for _, u := range h.lastPub {
		if u.Seq > afterSeq {
			sub.offer(u)
		}
	}
	h.estMu.Unlock()
	return sub, nil
}

// loop is the hub's single estimator goroutine: it sleeps until woken by
// Feed/Tick, coalesces everything that arrived, and publishes the diff.
func (h *StreamHub) loop() {
	defer close(h.loopDone)
	var tickC <-chan time.Time
	if h.tickDuration > 0 {
		ticker := time.NewTicker(h.tickDuration)
		defer ticker.Stop()
		tickC = ticker.C
	}
	for {
		select {
		case <-h.done:
			return
		case <-h.wake:
		case <-tickC:
			h.estMu.Lock()
			h.est.Tick()
			h.dirty = true
			h.estMu.Unlock()
		}
		h.estMu.Lock()
		if h.dirty {
			h.runEstimateLocked()
		}
		h.estMu.Unlock()
	}
}

// runEstimateLocked re-estimates incrementally (truth.Online warm-starts
// from the previous truths), diffs against the last published values, and
// broadcasts the tasks that moved. Caller holds estMu.
func (h *StreamHub) runEstimateLocked() {
	ests := h.est.Estimate()
	h.dirty = false
	h.estimates.Inc()
	round := h.est.Round()
	var updates []TruthUpdate
	now := time.Now()
	for task, v := range ests {
		if math.IsNaN(v) {
			continue
		}
		last := h.lastPub[task]
		if last.Seq != 0 && math.Abs(v-last.Value) <= h.cfg.Epsilon {
			continue // on change means value change, not round change
		}
		h.seq++
		u := TruthUpdate{Seq: h.seq, Task: task, Value: v, Round: round, born: now}
		h.lastPub[task] = u
		updates = append(updates, u)
	}
	if len(updates) == 0 {
		return
	}
	h.subMu.Lock()
	for sub := range h.subs {
		sub.offerAll(updates)
	}
	h.subMu.Unlock()
}

// Subscription is one watch consumer's bounded, latest-wins view of the
// update stream. Delivery: wait on Notify, then drain with Take.
type Subscription struct {
	hub *StreamHub

	mu      sync.Mutex
	pending map[int]TruthUpdate
	order   []int // FIFO of tasks with a pending update
	buf     int
	dropped uint64
	closed  bool

	notify chan struct{}
}

// offerAll enqueues a batch of updates.
func (s *Subscription) offerAll(updates []TruthUpdate) {
	for _, u := range updates {
		s.offer(u)
	}
}

// offer enqueues one update with latest-wins coalescing: a pending update
// for the same task is replaced in place (the superseded intermediate
// counts as dropped); a full buffer evicts its oldest pending task. The
// hub is never blocked by a slow consumer — offer is a bounded map write.
func (s *Subscription) offer(u TruthUpdate) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, exists := s.pending[u.Task]; exists {
		s.pending[u.Task] = u
		s.dropped++
		s.mu.Unlock()
		s.hub.dropped.Inc()
		return
	}
	if len(s.order) >= s.buf {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.pending, oldest)
		s.dropped++
		s.hub.dropped.Inc()
	}
	s.order = append(s.order, u.Task)
	s.pending[u.Task] = u
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Notify signals (edge-triggered, capacity 1) that updates are pending.
func (s *Subscription) Notify() <-chan struct{} { return s.notify }

// Take drains the pending updates in ascending Seq order (each task at
// most once, carrying its latest value) and counts them as pushed.
//
// The sort is what makes Last-Event-ID resume sound: coalescing replaces
// a pending update in place, so arrival order can put a freshly-coalesced
// high-Seq task ahead of an older low-Seq one. Seqs are assigned under
// estMu and every update offered after this drain is newer than anything
// drained, so sorting each batch makes the delivered Seq sequence
// globally monotone — a client that resumes from the last Seq it saw can
// never skip an update it was still owed.
func (s *Subscription) Take() []TruthUpdate {
	s.mu.Lock()
	if len(s.order) == 0 {
		s.mu.Unlock()
		return nil
	}
	out := make([]TruthUpdate, 0, len(s.order))
	for _, task := range s.order {
		out = append(out, s.pending[task])
		delete(s.pending, task)
	}
	s.order = s.order[:0]
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	s.hub.pushed.Add(int64(len(out)))
	return out
}

// Dropped returns how many updates this subscription coalesced away
// (superseded in place or evicted under buffer pressure).
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close unregisters the subscription and releases its buffer. Idempotent.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.pending = nil
	s.order = nil
	s.mu.Unlock()
	h := s.hub
	h.subMu.Lock()
	delete(h.subs, s)
	h.subscribers.Set(int64(len(h.subs)))
	h.subMu.Unlock()
}

// observePushLatency records publish→flush latency for delivered updates.
func (h *StreamHub) observePushLatency(updates []TruthUpdate, flushed time.Time) {
	for _, u := range updates {
		if !u.born.IsZero() {
			h.pushLatency.Observe(flushed.Sub(u.born))
		}
	}
}
