package platform

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRemoteStoreFlappingEndpointDoesNotStickBreakerOpen: a replica
// endpoint that alternates shard_unavailable and success (a flapping
// process, a bouncing LB target) must not wedge the client's circuit
// breaker open when the client also has a healthy endpoint to rotate to.
// Successes reset the breaker's consecutive-failure count, and rotation
// moves traffic to the healthy base, so every write lands and the breaker
// ends the run closed — the failure mode guarded against is the breaker
// counting the flapper's every-other-request 503s as one long failure
// streak and refusing calls that would have succeeded on the other
// endpoint.
func TestRemoteStoreFlappingEndpointDoesNotStickBreakerOpen(t *testing.T) {
	backend := httptest.NewServer(NewServer(NewLocalStore(testTasks(1)), nil))
	defer backend.Close()

	// The flapper: odd-numbered requests answer 503 shard_unavailable,
	// even-numbered ones serve normally.
	var hits atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1)%2 == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeShardUnavailable, Error: "shard flapping"})
			return
		}
		backend.Config.Handler.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	client := NewClient(flaky.URL,
		WithEndpoints(flaky.URL, backend.URL),
		WithRetries(3),
		WithBackoff(time.Millisecond, 5*time.Millisecond),
		WithBreaker(3, 50*time.Millisecond),
	)
	rs := NewRemoteStore(client)

	ctx := context.Background()
	for i := 0; i < 40; i++ {
		err := rs.Submit(ctx, accountName(i), 0, float64(i), at(0))
		if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("submit %d refused by a stuck-open breaker (state %v)", i, client.BreakerState())
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if st := client.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker ended %v, want closed — flapping must not latch it open", st)
	}
}

func accountName(i int) string {
	return "flap-" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}
