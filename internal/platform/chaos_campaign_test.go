package platform

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/chaos"
	"sybiltd/internal/obs"
)

// ackedSubmission is one report the platform acknowledged (201, or a
// duplicate-report rejection on retry — which proves the original write
// landed before its ack was torn).
type ackedSubmission struct {
	account string
	task    int
	value   float64
}

// TestChaosCampaignZeroAckedLoss drives a concurrent submission campaign
// through the fault injector — connection drops, injected 5xx bursts,
// injected rate limiting, and torn response bodies — against a platform
// running with overload protection enabled, then verifies the durability
// contract end to end: every acknowledged submission is present in the
// final dataset with the right value. Unacknowledged submissions may or
// may not have landed (the fault fired before or after the write); what
// is never allowed is an acknowledged write that vanished.
func TestChaosCampaignZeroAckedLoss(t *testing.T) {
	const (
		numAccounts = 8
		numTasks    = 4
	)
	store := NewLocalStore(testTasks(numTasks))
	s := NewServerWithOptions(store, ServerOptions{
		Registry: obs.NewRegistry(),
		Limits: ServerLimits{
			MaxConcurrent:  8,
			MaxQueue:       32,
			QueueTimeout:   2 * time.Second,
			RequestTimeout: 10 * time.Second,
		},
	})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	plan := chaos.Plan{
		Seed: 7,
		Default: chaos.Fault{
			DropProb:     0.15,
			Error5xxProb: 0.10,
			Error429Prob: 0.03,
			RetryAfter:   time.Second,
			TruncateProb: 0.10,
			Latency:      time.Millisecond,
			Jitter:       2 * time.Millisecond,
		},
	}
	faulty := chaos.NewTransport(srv.Client().Transport, plan)

	workersBusyBefore := obs.Default().Gauge("parallel.workers_busy").Value()

	var (
		mu    sync.Mutex
		acked []ackedSubmission
	)
	var wg sync.WaitGroup
	for a := 0; a < numAccounts; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			// One client per account, like real agents; generous retry
			// budget because the fault rates are high by design.
			client := NewClientWithConfig(srv.URL, ClientConfig{
				HTTPClient:     &http.Client{Transport: faulty},
				MaxRetries:     6,
				RetryBaseDelay: time.Millisecond,
				RetryMaxDelay:  20 * time.Millisecond,
			})
			account := fmt.Sprintf("acct-%d", a)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for task := 0; task < numTasks; task++ {
				value := float64(-70 - a - task)
				err := client.Submit(ctx, SubmissionRequest{
					Account: account, Task: task, Value: value, Time: at(a*numTasks + task),
				})
				// A duplicate rejection can only mean an earlier attempt
				// was written but its ack was torn: the data is in.
				if err == nil || errors.Is(err, ErrDuplicateReport) {
					mu.Lock()
					acked = append(acked, ackedSubmission{account, task, value})
					mu.Unlock()
				}
			}
		}(a)
	}
	wg.Wait()

	if len(acked) == 0 {
		t.Fatal("no submission survived the fault plan; campaign proves nothing")
	}
	t.Logf("chaos stats: %+v; %d/%d submissions acknowledged",
		faulty.Stats(), len(acked), numAccounts*numTasks)
	if st := faulty.Stats(); st.Drops == 0 && st.Injected5xx == 0 && st.Truncations == 0 {
		t.Fatal("fault injector fired nothing; the campaign was not chaotic")
	}

	// Aggregation still answers through the faults (retries absorb torn
	// bodies; the injector never sees the platform's own shed responses).
	aggClient := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:     &http.Client{Transport: faulty},
		MaxRetries:     8,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := aggClient.Aggregate(ctx, "td-ts"); err != nil {
		// Tolerate only a residual injected fault, never a platform error.
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status < 500 {
			t.Fatalf("aggregation failed with a platform rejection: %v", err)
		}
		t.Logf("aggregate lost to residual chaos (acceptable): %v", err)
	}

	// Verify against the source of truth over a CLEAN connection: every
	// acknowledged submission must be present with its exact value.
	clean := NewClient(srv.URL, WithHTTPClient(srv.Client()))
	ds, err := clean.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byAccount := make(map[string]map[int]float64)
	for _, acct := range ds.Accounts {
		vals := make(map[int]float64)
		for _, o := range acct.Observations {
			vals[o.Task] = o.Value
		}
		byAccount[acct.ID] = vals
	}
	for _, a := range acked {
		vals, ok := byAccount[a.account]
		if !ok {
			t.Fatalf("ACKED DATA LOST: account %s missing from final dataset", a.account)
		}
		got, ok := vals[a.task]
		if !ok {
			t.Fatalf("ACKED DATA LOST: %s task %d missing from final dataset", a.account, a.task)
		}
		if got != a.value {
			t.Fatalf("ACKED DATA CORRUPTED: %s task %d = %v, want %v", a.account, a.task, got, a.value)
		}
	}

	// No stranded aggregation workers: the parallel pools drained.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if obs.Default().Gauge("parallel.workers_busy").Value() <= workersBusyBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("parallel.workers_busy = %d did not return to %d — stranded workers",
				obs.Default().Gauge("parallel.workers_busy").Value(), workersBusyBefore)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosBatchedCampaignZeroAckedLoss is the torn-batch variant: the
// crowd submits through POST /v1/reports:batch against a DURABLE platform
// running group commit, through the same fault injector. An item counts as
// acknowledged when its envelope returned and the item was accepted — or
// was rejected as a duplicate, which proves an earlier torn attempt
// landed. After the campaign the platform is killed (no final snapshot)
// and recovered: every acknowledged item must survive with its exact
// value, batch boundaries notwithstanding.
func TestChaosBatchedCampaignZeroAckedLoss(t *testing.T) {
	const (
		numAccounts = 6
		numTasks    = 4
		batchSize   = 3
	)
	dir := t.TempDir()
	store, d, _, err := OpenDurable(dir, testTasks(numTasks), DurableOptions{
		CommitLinger:   500 * time.Microsecond,
		CommitMaxBatch: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServerWithOptions(store, ServerOptions{
		Registry: obs.NewRegistry(),
		Limits: ServerLimits{
			MaxConcurrent:  16,
			MaxQueue:       32,
			QueueTimeout:   2 * time.Second,
			RequestTimeout: 10 * time.Second,
		},
	})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	faulty := chaos.NewTransport(srv.Client().Transport, chaos.Plan{
		Seed: 23,
		Default: chaos.Fault{
			DropProb:     0.15,
			Error5xxProb: 0.10,
			TruncateProb: 0.10,
			Latency:      time.Millisecond,
			Jitter:       2 * time.Millisecond,
		},
	})

	var (
		mu    sync.Mutex
		acked []ackedSubmission
	)
	var wg sync.WaitGroup
	for a := 0; a < numAccounts; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			client := NewClientWithConfig(srv.URL, ClientConfig{
				HTTPClient:     &http.Client{Transport: faulty},
				MaxRetries:     6,
				RetryBaseDelay: time.Millisecond,
				RetryMaxDelay:  20 * time.Millisecond,
			})
			account := fmt.Sprintf("bacct-%d", a)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for start := 0; start < numTasks; start += batchSize {
				end := start + batchSize
				if end > numTasks {
					end = numTasks
				}
				reports := make([]SubmissionRequest, 0, end-start)
				for task := start; task < end; task++ {
					reports = append(reports, SubmissionRequest{
						Account: account, Task: task, Value: float64(-60 - a - task),
						Time: at(a*numTasks + task),
					})
				}
				results, err := client.SubmitBatch(ctx, reports)
				if err != nil {
					continue // whole envelope lost to chaos: nothing acked
				}
				for i, res := range results {
					itemErr := res.Err()
					// Accepted, or duplicate (an earlier torn attempt wrote it).
					if itemErr == nil || errors.Is(itemErr, ErrDuplicateReport) {
						mu.Lock()
						acked = append(acked, ackedSubmission{reports[i].Account, reports[i].Task, reports[i].Value})
						mu.Unlock()
					}
				}
			}
		}(a)
	}
	wg.Wait()

	if len(acked) == 0 {
		t.Fatal("no batched submission survived the fault plan; campaign proves nothing")
	}
	st := faulty.Stats()
	t.Logf("chaos stats: %+v; %d/%d items acknowledged", st, len(acked), numAccounts*numTasks)
	if st.Drops == 0 && st.Injected5xx == 0 && st.Truncations == 0 {
		t.Fatal("fault injector fired nothing; the campaign was not chaotic")
	}

	// Kill -9: close the WAL underneath without a final snapshot, then
	// recover from disk alone.
	srv.Close()
	if err := d.w.Close(); err != nil {
		t.Fatal(err)
	}
	store2, d2, stats, err := OpenDurable(dir, testTasks(numTasks), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	t.Logf("recovered: %d WAL records replayed, %d skipped", stats.RecordsReplayed, stats.RecordsSkipped)

	ds, _ := store2.Dataset(context.Background())
	byAccount := make(map[string]map[int]float64)
	for _, acct := range ds.Accounts {
		vals := make(map[int]float64)
		for _, o := range acct.Observations {
			vals[o.Task] = o.Value
		}
		byAccount[acct.ID] = vals
	}
	for _, a := range acked {
		vals, ok := byAccount[a.account]
		if !ok {
			t.Fatalf("ACKED DATA LOST: account %s missing after recovery", a.account)
		}
		got, ok := vals[a.task]
		if !ok {
			t.Fatalf("ACKED DATA LOST: %s task %d missing after recovery", a.account, a.task)
		}
		if got != a.value {
			t.Fatalf("ACKED DATA CORRUPTED: %s task %d = %v, want %v", a.account, a.task, got, a.value)
		}
	}
}

// TestChaosOutageOpensBreakerThenHeals stages a total outage via the
// injector, watches the client's circuit breaker open and fail fast, then
// heals the plan and watches the breaker recover through its probe.
func TestChaosOutageOpensBreakerThenHeals(t *testing.T) {
	store := NewLocalStore(testTasks(1))
	srv := httptest.NewServer(NewServerWithOptions(store, ServerOptions{Registry: obs.NewRegistry()}))
	t.Cleanup(srv.Close)

	faulty := chaos.NewTransport(srv.Client().Transport, chaos.Plan{})
	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:       &http.Client{Transport: faulty},
		MaxRetries:       0,
		BreakerThreshold: 3,
		BreakerCooldown:  20 * time.Millisecond,
	})
	ctx := context.Background()

	// Healthy baseline.
	if _, err := client.Tasks(ctx); err != nil {
		t.Fatalf("healthy baseline failed: %v", err)
	}

	// Outage: everything drops.
	faulty.SetPlan(chaos.Plan{Default: chaos.Fault{DropProb: 1}})
	for i := 0; i < 3; i++ {
		if _, err := client.Tasks(ctx); err == nil {
			t.Fatal("outage produced a success")
		}
	}
	if st := client.BreakerState(); st != BreakerOpen {
		t.Fatalf("breaker = %v after outage, want open", st)
	}
	// While open, calls fail locally: the injector sees no new requests.
	before := faulty.Stats().Requests
	if _, err := client.Tasks(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if faulty.Stats().Requests != before {
		t.Fatal("open breaker still hit the network")
	}

	// Heal and wait out the cooldown: the probe closes the circuit.
	faulty.SetPlan(chaos.Plan{})
	time.Sleep(30 * time.Millisecond)
	if _, err := client.Tasks(ctx); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if st := client.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker = %v after recovery, want closed", st)
	}
}

// TestChaosMiddlewareAgainstRealServer runs the server-side injector in
// front of the real platform handler: the client's retry loop must absorb
// the injected faults without double-writing (the duplicate guard holds).
func TestChaosMiddlewareAgainstRealServer(t *testing.T) {
	store := NewLocalStore(testTasks(2))
	inner := NewServerWithOptions(store, ServerOptions{Registry: obs.NewRegistry()})
	srv := httptest.NewServer(chaos.Plan{
		Seed:    11,
		Default: chaos.Fault{DropProb: 0.2, Error5xxProb: 0.2},
	}.Middleware(inner))
	t.Cleanup(srv.Close)

	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:     srv.Client(),
		MaxRetries:     8,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  10 * time.Millisecond,
	})
	ctx := context.Background()
	okCount := 0
	for i := 0; i < 10; i++ {
		err := client.Submit(ctx, SubmissionRequest{
			Account: fmt.Sprintf("mw-%d", i), Task: i % 2, Value: float64(i), Time: at(i),
		})
		if err == nil || errors.Is(err, ErrDuplicateReport) {
			okCount++
		}
	}
	if okCount == 0 {
		t.Fatal("nothing survived the middleware faults")
	}
	// The store never saw a double write despite retried submissions.
	ds, _ := store.Dataset(context.Background())
	for _, acct := range ds.Accounts {
		seen := map[int]bool{}
		for _, o := range acct.Observations {
			if seen[o.Task] {
				t.Fatalf("account %s double-wrote task %d under retries", acct.ID, o.Task)
			}
			seen[o.Task] = true
		}
	}
}
