package platform

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatchUnimplementedTyped: a server with the watch stream disabled
// (replica followers) answers the typed 501 wire shape, and Client.Watch
// fails with ErrUnimplemented instead of a bare status error.
func TestWatchUnimplementedTyped(t *testing.T) {
	srv := httptest.NewServer(NewServerWithOptions(NewLocalStore(testTasks(1)), ServerOptions{
		DisableWatch: true,
	}))
	defer srv.Close()
	c := NewClient(srv.URL, WithRetries(0))

	_, err := c.Watch(context.Background(), WatchOptions{})
	if !errors.Is(err, ErrUnimplemented) {
		t.Fatalf("watch on DisableWatch server = %v, want ErrUnimplemented", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeUnimplemented || ae.Status != http.StatusNotImplemented {
		t.Fatalf("wire shape = %+v, want code %q status 501", ae, CodeUnimplemented)
	}

	// The rest of the API still works on the same server.
	if _, err := c.Tasks(context.Background()); err != nil {
		t.Fatalf("tasks on DisableWatch server: %v", err)
	}
}

// TestWatchBare404BrandedUnimplemented: a server that has no watch route
// at all (an older node, or a proxy stripping the path) answers a bare
// 404 with no wire code; the client brands it ErrUnimplemented so
// callers get a typed "endpoint isn't here" instead of a naked status.
func TestWatchBare404BrandedUnimplemented(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, WithRetries(0))

	_, err := c.Watch(context.Background(), WatchOptions{})
	if !errors.Is(err, ErrUnimplemented) {
		t.Fatalf("watch against bare-404 server = %v, want ErrUnimplemented", err)
	}
}

// TestWatchReconnectStopsOnUnimplemented: with Reconnect enabled, a
// stream that dies and redials into a node without the endpoint must end
// with the typed error rather than redialing a permanent answer forever.
func TestWatchReconnectStopsOnUnimplemented(t *testing.T) {
	// First connection succeeds against a real streaming server; then the
	// server is swapped for one that 501s the route.
	real := NewServerWithOptions(NewLocalStore(testTasks(1)), ServerOptions{})
	stub := NewServerWithOptions(NewLocalStore(testTasks(1)), ServerOptions{DisableWatch: true})
	var useStub atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if useStub.Load() {
			stub.ServeHTTP(w, r)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer srv.Close()
	defer real.Close()
	defer stub.Close()

	c := NewClient(srv.URL, WithRetries(0), WithBackoff(time.Millisecond, 5*time.Millisecond))
	w, err := c.Watch(context.Background(), WatchOptions{Reconnect: true})
	if err != nil {
		t.Fatalf("initial watch: %v", err)
	}
	useStub.Store(true)
	real.Close() // kills the live stream; the watcher redials into the 501

	done := make(chan struct{})
	go func() {
		for range w.Updates() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher kept running against an unimplemented endpoint")
	}
	if err := w.Err(); !errors.Is(err, ErrUnimplemented) {
		t.Fatalf("watcher ended with %v, want ErrUnimplemented", err)
	}
}
