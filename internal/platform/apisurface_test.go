package platform

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPISnapshot = flag.Bool("update", false, "rewrite the exported-API snapshot golden files")

// TestExportedAPISnapshot pins the exported surface of the platform
// packages (and the root library package) against a checked-in golden
// file. An intentional API change regenerates the snapshot with
//
//	go test ./internal/platform/ -run ExportedAPISnapshot -update
//
// and the diff shows up in review as exactly the list of added/removed/
// re-signed exported identifiers — so nothing can slip out of (or back
// into, like the removed ResponseMet alias) the API unnoticed.
func TestExportedAPISnapshot(t *testing.T) {
	for _, pkg := range []struct {
		name string
		dir  string
	}{
		{"platform", "."},
		{"shard", "./shard"},
		{"sybiltd", "../.."},
	} {
		t.Run(pkg.name, func(t *testing.T) {
			got := exportedSurface(t, pkg.dir)
			golden := filepath.Join("testdata", "api_"+pkg.name+".golden")
			if *updateAPISnapshot {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create it): %v", err)
			}
			if got != string(want) {
				t.Errorf("exported API surface changed; rerun with -update if intentional.\n%s",
					surfaceDiff(string(want), got))
			}
		})
	}
}

// exportedSurface renders one line per exported top-level identifier:
// funcs and methods with their signatures, types with their kind, consts
// and vars by name, plus exported fields of exported structs and methods
// of exported interfaces.
func exportedSurface(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	add := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					recv := ""
					if d.Recv != nil && len(d.Recv.List) > 0 {
						rt := typeString(d.Recv.List[0].Type)
						if !exportedReceiver(rt) {
							continue
						}
						recv = "(" + rt + ") "
					}
					add("func %s%s%s", recv, d.Name.Name, signatureString(d.Type))
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							switch st := s.Type.(type) {
							case *ast.StructType:
								add("type %s struct", s.Name.Name)
								for _, f := range st.Fields.List {
									for _, n := range f.Names {
										if n.IsExported() {
											add("type %s struct { %s %s }", s.Name.Name, n.Name, typeString(f.Type))
										}
									}
									if len(f.Names) == 0 { // embedded
										add("type %s struct { embedded %s }", s.Name.Name, typeString(f.Type))
									}
								}
							case *ast.InterfaceType:
								add("type %s interface", s.Name.Name)
								for _, m := range st.Methods.List {
									for _, n := range m.Names {
										if n.IsExported() {
											add("type %s interface { %s%s }", s.Name.Name, n.Name, signatureString(m.Type.(*ast.FuncType)))
										}
									}
									if len(m.Names) == 0 { // embedded
										add("type %s interface { embedded %s }", s.Name.Name, typeString(m.Type))
									}
								}
							default:
								if s.Assign != token.NoPos {
									add("type %s = %s", s.Name.Name, typeString(s.Type))
								} else {
									add("type %s %s", s.Name.Name, typeString(s.Type))
								}
							}
						case *ast.ValueSpec:
							kw := "var"
							if d.Tok == token.CONST {
								kw = "const"
							}
							for _, n := range s.Names {
								if n.IsExported() {
									add("%s %s", kw, n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// exportedReceiver reports whether a method receiver type like "*Store"
// or "Ring" names an exported type.
func exportedReceiver(rt string) bool {
	rt = strings.TrimPrefix(rt, "*")
	if i := strings.Index(rt, "["); i >= 0 { // generic receiver
		rt = rt[:i]
	}
	return ast.IsExported(rt)
}

func signatureString(ft *ast.FuncType) string {
	params := fieldListTypes(ft.Params)
	results := fieldListTypes(ft.Results)
	switch len(results) {
	case 0:
		return "(" + strings.Join(params, ", ") + ")"
	case 1:
		return "(" + strings.Join(params, ", ") + ") " + results[0]
	default:
		return "(" + strings.Join(params, ", ") + ") (" + strings.Join(results, ", ") + ")"
	}
}

func fieldListTypes(fl *ast.FieldList) []string {
	if fl == nil {
		return nil
	}
	var out []string
	for _, f := range fl.List {
		ts := typeString(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, ts)
		}
	}
	return out
}

// typeString renders a type expression compactly (enough to detect
// signature changes; not a full go/types printer).
func typeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeString(t.X)
	case *ast.SelectorExpr:
		return typeString(t.X) + "." + t.Sel.Name
	case *ast.ArrayType:
		return "[]" + typeString(t.Elt)
	case *ast.MapType:
		return "map[" + typeString(t.Key) + "]" + typeString(t.Value)
	case *ast.FuncType:
		return "func" + signatureString(t)
	case *ast.Ellipsis:
		return "..." + typeString(t.Elt)
	case *ast.ChanType:
		switch t.Dir {
		case ast.RECV:
			return "<-chan " + typeString(t.Value)
		case ast.SEND:
			return "chan<- " + typeString(t.Value)
		default:
			return "chan " + typeString(t.Value)
		}
	case *ast.InterfaceType:
		if t.Methods == nil || len(t.Methods.List) == 0 {
			return "any"
		}
		return "interface{...}"
	case *ast.StructType:
		return "struct{...}"
	case *ast.IndexExpr:
		return typeString(t.X) + "[" + typeString(t.Index) + "]"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// surfaceDiff renders a minimal line diff between two snapshots.
func surfaceDiff(want, got string) string {
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	return b.String()
}
