package platform

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sybiltd/internal/mcs"
)

// TestClientJitterStreamsDiffer: two clients constructed back to back must
// not share a backoff-jitter stream. The old time.Now().UnixNano() seed
// made a fleet of agents started together back off in lockstep —
// synchronized retry storms against an overloaded platform. With the
// crypto/rand seed the streams are independent (eight identical draws in a
// row is a ~2^-400 event, not flake territory).
func TestClientJitterStreamsDiffer(t *testing.T) {
	c1 := NewClient("http://localhost:0")
	c2 := NewClient("http://localhost:0")
	identical := true
	for i := 0; i < 8; i++ {
		c1.mu.Lock()
		v1 := c1.rng.Float64()
		c1.mu.Unlock()
		c2.mu.Lock()
		v2 := c2.rng.Float64()
		c2.mu.Unlock()
		if v1 != v2 {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("two clients produced identical jitter streams: RNG seed is not per-client")
	}
}

// connCountingListener wraps a listener and counts accepted connections.
// If the client leaks response bodies, the transport cannot reuse the
// connection and every retry dials a fresh one — the count gives it away.
type connCountingListener struct {
	net.Listener
	opened atomic.Int32
}

func (l *connCountingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.opened.Add(1)
	}
	return c, err
}

// TestClientRetryReusesConnections: the retry paths (plain 5xx, 429 with a
// rate-limited code, and the no-Retry-After branch) must drain and close
// every response body they abandon, so the transport keeps reusing one
// connection across the whole retry sequence.
func TestClientRetryReusesConnections(t *testing.T) {
	var calls atomic.Int32
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1: // retryable 5xx with a body to leak
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeInternal, Error: "transient"})
		case 2: // retryable 429, rate_limited code, no Retry-After header
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeRateLimited, Error: "slow down"})
		default:
			_ = json.NewEncoder(w).Encode([]TaskDTO{{ID: 3}})
		}
	})
	srv := httptest.NewUnstartedServer(handler)
	counting := &connCountingListener{Listener: srv.Listener}
	srv.Listener = counting
	srv.Start()
	t.Cleanup(srv.Close)

	client := NewClientWithConfig(srv.URL, ClientConfig{
		MaxRetries:     3,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
	})
	tasks, err := client.Tasks(context.Background())
	if err != nil {
		t.Fatalf("retry sequence failed: %v", err)
	}
	if len(tasks) != 1 || tasks[0].ID != 3 {
		t.Fatalf("tasks = %+v", tasks)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if got := counting.opened.Load(); got != 1 {
		t.Errorf("retries opened %d connections, want 1 (abandoned bodies not drained, so the transport could not reuse the connection)", got)
	}
}

// TestClientDrainBoundedOnHugeBody: a retryable error with an oversized
// body must not stall the retry loop reading megabytes of junk — the drain
// is bounded, at the cost of closing (not reusing) that one connection.
func TestClientDrainBoundedOnHugeBody(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			junk := make([]byte, 1<<20) // 4x the drain cap
			_, _ = w.Write(junk)
			return
		}
		_ = json.NewEncoder(w).Encode([]TaskDTO{{ID: 1}})
	}))
	t.Cleanup(srv.Close)
	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:     srv.Client(),
		MaxRetries:     1,
		RetryBaseDelay: time.Millisecond,
	})
	start := time.Now()
	if _, err := client.Tasks(context.Background()); err != nil {
		t.Fatalf("retry after huge error body failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain of oversized body took %v", elapsed)
	}
}

// TestReplayPaceCancelPrompt: cancelling mid-pace-sleep must abort the
// replay promptly, not sleep out the scaled gap.
func TestReplayPaceCancelPrompt(t *testing.T) {
	_, client := newTestServer(t, 1)
	ds := mcs.NewDataset(1)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{
		{Task: 0, Value: -80, Time: at(0)},
	}})
	ds.AddAccount(mcs.Account{ID: "b", Observations: []mcs.Observation{
		{Task: 0, Value: -81, Time: at(0).Add(time.Hour)}, // scaled: a 6-minute nap
	}})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	n, err := ReplayDataset(ctx, client, ds, ReplayOptions{Pace: 10})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancelled pace sleep blocked for %v", elapsed)
	}
	if n != 1 {
		t.Errorf("submitted %d events before cancel, want 1", n)
	}
}

// TestReplayPaceWithBatch: paced replay through the batch path — every
// event lands, OnEvent fires per report, and the replayed platform holds
// the full dataset.
func TestReplayPaceWithBatch(t *testing.T) {
	store := NewLocalStore(testTasks(2))
	srv := httptest.NewServer(NewServer(store, nil))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, WithHTTPClient(srv.Client()))

	ds := mcs.NewDataset(2)
	for a := 0; a < 3; a++ {
		acct := mcs.Account{ID: fmt.Sprintf("acct%d", a), Fingerprint: []float64{1, 2, float64(a)}}
		for task := 0; task < 2; task++ {
			acct.Observations = append(acct.Observations, mcs.Observation{
				Task: task, Value: -80 - float64(a), Time: at(a*2 + task),
			})
		}
		ds.AddAccount(acct)
	}
	var events int
	n, err := ReplayDataset(context.Background(), client, ds, ReplayOptions{
		Pace:      1e9, // paced, but effectively instant
		BatchSize: 4,
		OnEvent:   func(int) { events++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || events != 6 {
		t.Fatalf("replayed %d events (callbacks %d), want 6", n, events)
	}
	got, _ := store.Dataset(context.Background())
	if got.NumAccounts() != 3 {
		t.Fatalf("accounts = %d, want 3", got.NumAccounts())
	}
	for i := range got.Accounts {
		if len(got.Accounts[i].Fingerprint) == 0 {
			t.Errorf("account %q lost its fingerprint through the batch path", got.Accounts[i].ID)
		}
		if len(got.Accounts[i].Observations) != 2 {
			t.Errorf("account %q has %d observations, want 2", got.Accounts[i].ID, len(got.Accounts[i].Observations))
		}
	}
}
