package platform

import (
	"context"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/truth"
)

// Store is the narrow, context-first surface the platform serves. Two
// implementations ship with the package — LocalStore, the mutex'd
// in-memory state (optionally wrapped by Durability), and RemoteStore, a
// Client-backed view of another node — and internal/platform/shard adds a
// consistent-hash router that composes N of them into one. Server speaks
// only this interface, so a single durable node and a multi-shard router
// serve the identical /v1 wire API.
//
// Every method takes the request context: an expired deadline refuses the
// operation before any durable or remote work begins. Implementations
// must be safe for concurrent use.
type Store interface {
	// Tasks returns the published tasks.
	Tasks(ctx context.Context) ([]mcs.Task, error)
	// Submit records one observation for an account. Each account may
	// report on each task at most once (§III-C).
	Submit(ctx context.Context, account string, task int, value float64, at time.Time) error
	// SubmitBatch records many observations, validating items
	// independently; per-item errors come back positionally (nil =
	// acknowledged durable). The returned slice always has len(items).
	SubmitBatch(ctx context.Context, items []BatchSubmission) []error
	// RecordFingerprint extracts Table II features from a raw sign-in
	// capture and stores them for the account.
	RecordFingerprint(ctx context.Context, account string, rec mems.Recording) error
	// RecordFingerprintFeatures stores an already-extracted fingerprint
	// feature vector (the replay/import path).
	RecordFingerprintFeatures(ctx context.Context, account string, features []float64) error
	// Dataset snapshots the full campaign as an mcs.Dataset.
	Dataset(ctx context.Context) (*mcs.Dataset, error)
	// Aggregate runs the named aggregation method ("crh", "mean",
	// "median", "td-fp", "td-ts", "td-tr") over the current dataset and
	// returns the result plus per-task weighted standard errors (see
	// truth.Uncertainty).
	Aggregate(ctx context.Context, method string) (truth.Result, []float64, error)
	// Stats summarizes the store. On a sharded store a partial
	// scatter-gather marks the response Degraded.
	Stats(ctx context.Context) (StatsResponse, error)
	// SetSubmitListener installs (or, with nil, removes) the
	// acknowledged-submission hook. At most one listener is active; a
	// later call replaces the earlier one.
	SetSubmitListener(fn SubmitListener)
}

// Pinger is an optional Store capability: a health probe answering like
// GET /readyz. RemoteStore forwards to the backing node; LocalStore is
// trivially ready. The shard router uses it to build per-shard health.
type Pinger interface {
	Ready(ctx context.Context) (ReadyzResponse, error)
}

// HealthReporter is an optional Store capability: per-shard health for a
// composite store. When the server's store implements it, /readyz
// aggregates the breakdown and answers 503 unless every shard is ready.
type HealthReporter interface {
	ShardHealth(ctx context.Context) []ShardHealth
}

// ShardHealth is one shard's slice of a composite /readyz answer. On a
// replicated fleet there is one entry per replica: Shard names the
// replica group (ring position) and Replica the member within it.
type ShardHealth struct {
	Shard int `json:"shard"`
	// Replica is the member index within the shard's replica group; zero
	// (and omitted) on unreplicated fleets, where each shard is a single
	// process.
	Replica int    `json:"replica,omitempty"`
	Addr    string `json:"addr,omitempty"`
	Ready   bool   `json:"ready"`
	// Status is the shard's own /readyz status ("ready", "draining",
	// "overloaded") or "unreachable" when the probe failed.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Role is the replica's replication role ("primary"/"follower") when
	// the router's failover poller knows it; empty otherwise.
	Role string `json:"role,omitempty"`
	// ProbeAgeMs is how stale this answer is: milliseconds since the
	// router's health poller last completed a probe of this replica. Only
	// set when a background poller (rather than a live probe) produced the
	// entry, so readyz consumers can tell cached state from fresh.
	ProbeAgeMs int64 `json:"probe_age_ms,omitempty"`
}

// ReadyzResponse is the body served at /readyz. Shards is present only on
// a router aggregating a multi-shard platform; a single node serializes
// exactly the pre-sharding {"status": ...} body. RingVersion and
// Migrating appear on a router whose store reports ring status (see
// RingStatusReporter), so operators can watch an online reshard cut over.
type ReadyzResponse struct {
	Status      string        `json:"status"`
	Shards      []ShardHealth `json:"shards,omitempty"`
	RingVersion uint64        `json:"ring_version,omitempty"`
	Migrating   bool          `json:"migrating,omitempty"`
}

// RingStatus is a composite store's current topology version and whether
// an online reshard is in flight.
type RingStatus struct {
	Version   uint64 `json:"ring_version"`
	Migrating bool   `json:"migrating"`
}

// RingStatusReporter is an optional Store capability: the sharded router
// implements it, and /readyz folds the answer into its body.
type RingStatusReporter interface {
	RingStatus() RingStatus
}
