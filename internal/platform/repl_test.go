package platform

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sybiltd/internal/obs"
)

// replNode is one replica for tests: a durable store, its replication
// manager, and an httptest server speaking the full /v1 wire API.
type replNode struct {
	t      *testing.T
	dir    string
	store  *LocalStore
	d      *Durability
	repl   *Replication
	reg    *obs.Registry
	srv    *httptest.Server
	client *Client
}

// startReplNode boots a replica over dir. ropts.FollowerOf decides the
// starting role. The node serves on a fresh httptest listener.
func startReplNode(t *testing.T, dir string, ropts ReplicationOptions) *replNode {
	t.Helper()
	store, d, _, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if ropts.Registry == nil {
		ropts.Registry = reg
	}
	repl := NewReplication(store, d, ropts)
	srv := httptest.NewServer(NewServerWithOptions(store, ServerOptions{
		Registry:     reg,
		Replication:  repl,
		DisableWatch: ropts.FollowerOf != "",
	}))
	n := &replNode{
		t: t, dir: dir, store: store, d: d, repl: repl, reg: reg, srv: srv,
		client: NewClient(srv.URL, WithRetries(0)),
	}
	t.Cleanup(n.stop)
	return n
}

// stop shuts the node down cleanly (server, shippers, durability).
// Idempotent so tests can kill a node mid-test and let Cleanup re-run it.
func (n *replNode) stop() {
	if n.srv != nil {
		n.srv.Close()
		n.srv = nil
	}
	n.repl.Close()
	_ = n.d.Close()
}

// kill simulates a crash: the HTTP server goes away but no final
// snapshot is written (the WAL keeps everything acknowledged).
func (n *replNode) kill() {
	if n.srv != nil {
		n.srv.CloseClientConnections()
		n.srv.Close()
		n.srv = nil
	}
	n.repl.Close()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// gauge reads one gauge from a registry snapshot, 0 when absent.
func gauge(reg *obs.Registry, name string) int64 {
	return reg.Snapshot().Gauges[name]
}

func counterVal(reg *obs.Registry, name string) int64 {
	return reg.Snapshot().Counters[name]
}

// listenTCP rebinds a specific address a previous test server held.
func listenTCP(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// TestReplicationShipsAndFollowerConverges drives an async primary→
// follower pair: every acked write reaches the follower, the follower's
// dataset is byte-equivalent, and both lag gauges drop to zero.
func TestReplicationShipsAndFollowerConverges(t *testing.T) {
	follower := startReplNode(t, t.TempDir(), ReplicationOptions{
		FollowerOf:   "http://primary.invalid",
		ShipInterval: 10 * time.Millisecond,
	})
	primary := startReplNode(t, t.TempDir(), ReplicationOptions{
		Followers:    []string{follower.srv.URL},
		ShipInterval: 10 * time.Millisecond,
	})

	ctx := context.Background()
	for i := 0; i < 20; i++ {
		acct := fmt.Sprintf("acct-%02d", i)
		if err := primary.client.Submit(ctx, SubmissionRequest{Account: acct, Task: i % 3, Value: float64(i), Time: at(i % 3)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := primary.client.RecordFeatureFingerprint(ctx, "acct-00", []float64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatalf("fingerprint: %v", err)
	}

	primarySeq := primary.d.durableSeq()
	waitFor(t, 5*time.Second, "follower catch-up", func() bool {
		st, err := follower.client.ReplStatus(ctx)
		return err == nil && st.DurableSeq == primarySeq
	})

	// Follower state must equal primary state record for record.
	pds, err := primary.store.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fds, err := follower.store.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pds.Accounts) != len(fds.Accounts) {
		t.Fatalf("follower has %d accounts, primary %d", len(fds.Accounts), len(pds.Accounts))
	}
	for i := range pds.Accounts {
		p, f := pds.Accounts[i], fds.Accounts[i]
		if p.ID != f.ID || len(p.Observations) != len(f.Observations) || len(p.Fingerprint) != len(f.Fingerprint) {
			t.Fatalf("account %d diverged: primary %s/%d obs, follower %s/%d",
				i, p.ID, len(p.Observations), f.ID, len(f.Observations))
		}
	}

	// Lag is observable on both sides and settles to zero.
	waitFor(t, 2*time.Second, "primary lag gauge to drop", func() bool {
		return gauge(primary.reg, "repl.lag_records") == 0 &&
			gauge(primary.reg, "repl.lag_records.follower0") == 0
	})
	waitFor(t, 2*time.Second, "follower lag gauge to drop", func() bool {
		return gauge(follower.reg, "repl.lag_records") == 0
	})
	if counterVal(primary.reg, "repl.shipped_frames") == 0 {
		t.Error("primary shipped_frames counter never moved")
	}
	if counterVal(follower.reg, "repl.applied_frames") == 0 {
		t.Error("follower applied_frames counter never moved")
	}

	// The lag gauge also reaches the Prometheus endpoint (dots
	// sanitized), satisfying "observable via both metrics endpoints".
	resp, err := http.Get(primary.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "repl_lag_records") {
		t.Error("/metrics does not expose repl_lag_records")
	}
}

// TestFollowerRejectsClientWrites: a follower answers client mutations
// with the typed 503 not_primary wire shape, and serves reads.
func TestFollowerRejectsClientWrites(t *testing.T) {
	follower := startReplNode(t, t.TempDir(), ReplicationOptions{FollowerOf: "http://primary.invalid"})
	ctx := context.Background()

	err := follower.client.Submit(ctx, SubmissionRequest{Account: "acct", Task: 0, Value: 1, Time: at(0)})
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("follower submit error = %v, want ErrNotPrimary", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeNotPrimary || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("wire shape = %+v, want code %q status 503", ae, CodeNotPrimary)
	}
	res, err := follower.client.SubmitBatch(ctx, []SubmissionRequest{{Account: "a", Task: 0, Value: 1, Time: at(0)}})
	if err != nil {
		t.Fatalf("batch envelope: %v", err)
	}
	if len(res) != 1 || res[0].Code != CodeNotPrimary {
		t.Fatalf("follower batch results = %+v, want code %q", res, CodeNotPrimary)
	}
	// Reads still answer (default: any staleness).
	if _, err := follower.client.Stats(ctx); err != nil {
		t.Fatalf("follower read: %v", err)
	}
}

// TestApplyShipIdempotencyGapAndCRC exercises the follower-side apply
// contract directly: replays are no-ops, gaps apply nothing and answer
// the follower's cursor, corrupt payloads are refused.
func TestApplyShipIdempotencyGapAndCRC(t *testing.T) {
	ctx := context.Background()
	pStore, pd, _, err := OpenDurable(t.TempDir(), testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pd.Close()
	pr := NewReplication(pStore, pd, ReplicationOptions{Registry: obs.NewRegistry()})
	defer pr.Close()
	for i := 0; i < 3; i++ {
		if err := pStore.Submit(ctx, fmt.Sprintf("a%d", i), 0, float64(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	frames, needSnap, err := pd.framesSince(0, 100)
	if err != nil || needSnap || len(frames) != 3 {
		t.Fatalf("framesSince = %d frames, needSnap=%v, err=%v; want 3 clean", len(frames), needSnap, err)
	}

	fStore, fd, _, err := OpenDurable(t.TempDir(), testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()
	fr := NewReplication(fStore, fd, ReplicationOptions{FollowerOf: "x", Registry: obs.NewRegistry()})
	defer fr.Close()

	ship := func(req ReplShipRequest) ReplShipResponse {
		t.Helper()
		resp, err := fr.ApplyShip(ctx, req)
		if err != nil {
			t.Fatalf("ApplyShip: %v", err)
		}
		return resp
	}

	// First ship applies everything.
	resp := ship(ReplShipRequest{Epoch: 0, PrimarySeq: 3, Frames: frames})
	if resp.AppliedSeq != 3 || !resp.Durable {
		t.Fatalf("first ship: %+v, want applied 3 durable", resp)
	}
	// Exact replay: idempotent, cursor unchanged, nothing re-applied.
	applied := counterVal(fr.reg, "repl.applied_frames")
	resp = ship(ReplShipRequest{Epoch: 0, PrimarySeq: 3, Frames: frames})
	if resp.AppliedSeq != 3 {
		t.Fatalf("replay: %+v, want applied 3", resp)
	}
	if counterVal(fr.reg, "repl.applied_frames") != applied {
		t.Error("replay re-applied frames")
	}
	st, _ := fStore.Stats(ctx)
	if st.Accounts != 3 {
		t.Fatalf("follower has %d accounts after replay, want 3", st.Accounts)
	}

	// A gap (frames starting past the cursor) applies nothing and
	// reports the cursor so the primary can reship the range.
	if err := pStore.Submit(ctx, "a3", 0, 3, at(0)); err != nil {
		t.Fatal(err)
	}
	if err := pStore.Submit(ctx, "a4", 0, 4, at(0)); err != nil {
		t.Fatal(err)
	}
	tail, _, err := pd.framesSince(4, 100) // skips seq 4: frames begin at 5
	if err != nil || len(tail) != 1 {
		t.Fatalf("tail frames: %d, err=%v", len(tail), err)
	}
	resp = ship(ReplShipRequest{Epoch: 0, PrimarySeq: 5, Frames: tail})
	if resp.AppliedSeq != 3 {
		t.Fatalf("gapped ship advanced cursor to %d, want it held at 3", resp.AppliedSeq)
	}

	// Corrupt payload: CRC mismatch is refused before any apply.
	missing, _, err := pd.framesSince(3, 100)
	if err != nil || len(missing) != 2 {
		t.Fatalf("missing frames: %d, err=%v", len(missing), err)
	}
	bad := make([]ReplFrame, len(missing))
	copy(bad, missing)
	badPayload := append([]byte(nil), bad[0].Payload...)
	badPayload[0] ^= 0xff
	bad[0].Payload = badPayload
	if _, err := fr.ApplyShip(ctx, ReplShipRequest{Epoch: 0, PrimarySeq: 5, Frames: bad}); err == nil {
		t.Fatal("corrupt frame accepted")
	}

	// The intact range lands.
	resp = ship(ReplShipRequest{Epoch: 0, PrimarySeq: 5, Frames: missing})
	if resp.AppliedSeq != 5 {
		t.Fatalf("catch-up ship: %+v, want applied 5", resp)
	}
}

// TestApplyShipEpochRules: stale-epoch ships are refused as not_primary;
// higher-epoch frame ships demand a snapshot; an equal-epoch split brain
// (two primaries) is refused.
func TestApplyShipEpochRules(t *testing.T) {
	ctx := context.Background()
	node := startReplNode(t, t.TempDir(), ReplicationOptions{FollowerOf: "x"})

	// Adopt epoch 2 via snapshot ship.
	pStore, pd, _, err := OpenDurable(t.TempDir(), testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pd.Close()
	pr := NewReplication(pStore, pd, ReplicationOptions{Registry: obs.NewRegistry()})
	defer pr.Close()
	if err := pStore.Submit(ctx, "a0", 0, 1, at(0)); err != nil {
		t.Fatal(err)
	}
	shipSnap, err := pr.snapshotForShip()
	if err != nil {
		t.Fatal(err)
	}
	snap, snapSeq := shipSnap.data, shipSnap.seq
	resp, err := node.repl.ApplyShip(ctx, ReplShipRequest{Epoch: 2, PrimarySeq: snapSeq, Snapshot: snap, SnapshotSeq: snapSeq})
	if err != nil || resp.Epoch != 2 || resp.AppliedSeq != snapSeq {
		t.Fatalf("snapshot ship: %+v, %v; want epoch 2 applied %d", resp, err, snapSeq)
	}

	// Stale epoch (1 < 2): refused, typed not_primary.
	if _, err := node.repl.ApplyShip(ctx, ReplShipRequest{Epoch: 1, PrimarySeq: 9}); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("stale-epoch ship error = %v, want ErrNotPrimary", err)
	}

	// Higher epoch with frames only: follower must demand a snapshot.
	resp, err = node.repl.ApplyShip(ctx, ReplShipRequest{Epoch: 3, PrimarySeq: 9, Frames: []ReplFrame{{Seq: snapSeq + 1}}})
	if err != nil || !resp.NeedSnapshot {
		t.Fatalf("higher-epoch frames: %+v, %v; want NeedSnapshot", resp, err)
	}

	// Split brain: a primary refuses an equal-epoch ship from a peer.
	if err := node.repl.SetRole(ctx, ReplRoleRequest{Role: RolePrimary, Epoch: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := node.repl.ApplyShip(ctx, ReplShipRequest{Epoch: 5, PrimarySeq: 1}); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("equal-epoch ship to a primary = %v, want ErrNotPrimary", err)
	}
}

// TestApplyShipRevalidatesUnderLock pins the inner halves of ApplyShip:
// applyFrames and resetFromSnapshot re-check epoch and role inside the
// store critical section, so a promotion landing between ApplyShip's gate
// and the apply (SetRole persists a higher epoch, then flips the role)
// cannot be followed by stale-lineage frames interleaving at contiguous
// seqs or a stale snapshot rewinding the promoted node's state. Calling
// the inner methods directly simulates the gate having passed just before
// the promotion.
func TestApplyShipRevalidatesUnderLock(t *testing.T) {
	ctx := context.Background()
	pStore, pd, _, err := OpenDurable(t.TempDir(), testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer pd.Close()
	pr := NewReplication(pStore, pd, ReplicationOptions{Registry: obs.NewRegistry()})
	defer pr.Close()
	for i := 0; i < 3; i++ {
		if err := pStore.Submit(ctx, fmt.Sprintf("a%d", i), 0, float64(i), at(0)); err != nil {
			t.Fatal(err)
		}
	}
	frames, _, err := pd.framesSince(0, 100)
	if err != nil || len(frames) != 3 {
		t.Fatalf("framesSince: %d frames, err=%v", len(frames), err)
	}
	shipSnap, err := pr.snapshotForShip()
	if err != nil || shipSnap.epoch != 0 {
		t.Fatalf("snapshotForShip: epoch=%d, err=%v", shipSnap.epoch, err)
	}
	snap, snapSeq := shipSnap.data, shipSnap.seq

	node := startReplNode(t, t.TempDir(), ReplicationOptions{FollowerOf: "x"})
	// Normal ship at epoch 0 lands the first two frames.
	if _, err := node.repl.ApplyShip(ctx, ReplShipRequest{Epoch: 0, PrimarySeq: 2, Frames: frames[:2]}); err != nil {
		t.Fatal(err)
	}
	// The promotion that races the gate: epoch 2, role primary.
	if err := node.repl.SetRole(ctx, ReplRoleRequest{Role: RolePrimary, Epoch: 2}); err != nil {
		t.Fatal(err)
	}

	// Frames validated against the pre-promotion epoch must be refused by
	// the locked re-check, leaving seq and epoch untouched.
	if _, err := node.repl.applyFrames(frames[2:], 0); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("stale-epoch applyFrames = %v, want ErrNotPrimary", err)
	}
	if seq, epoch := node.d.durableSeq(), node.d.Epoch(); seq != 2 || epoch != 2 {
		t.Fatalf("after refused frames: seq=%d epoch=%d, want 2/2 untouched", seq, epoch)
	}

	// A stale snapshot reset (epoch 0 < ours) must not rewind state.
	err = node.repl.resetFromSnapshot(ReplShipRequest{Epoch: 0, PrimarySeq: snapSeq, Snapshot: snap, SnapshotSeq: snapSeq})
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("stale snapshot reset = %v, want ErrNotPrimary", err)
	}
	// An equal-epoch snapshot against a primary is a split brain, refused.
	err = node.repl.resetFromSnapshot(ReplShipRequest{Epoch: 2, PrimarySeq: snapSeq, Snapshot: snap, SnapshotSeq: snapSeq})
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("equal-epoch snapshot to a primary = %v, want ErrNotPrimary", err)
	}
	if seq, epoch := node.d.durableSeq(), node.d.Epoch(); seq != 2 || epoch != 2 {
		t.Fatalf("after refused resets: seq=%d epoch=%d, want 2/2 untouched", seq, epoch)
	}
	if node.repl.Role() != RolePrimary {
		t.Fatalf("role = %q after refused stale ships, want primary kept", node.repl.Role())
	}

	// A genuinely newer snapshot (epoch 3) against a primary that missed
	// its demotion is adopted — and the node steps down in the same
	// critical section.
	err = node.repl.resetFromSnapshot(ReplShipRequest{Epoch: 3, PrimarySeq: snapSeq, Snapshot: snap, SnapshotSeq: snapSeq})
	if err != nil {
		t.Fatalf("newer snapshot reset: %v", err)
	}
	if node.repl.Role() != RoleFollower || node.d.Epoch() != 3 {
		t.Fatalf("after newer snapshot: role=%q epoch=%d, want follower at 3", node.repl.Role(), node.d.Epoch())
	}
}

// TestFollowerCatchUpFromWALTail: a follower that missed ships while down
// rejoins at the same epoch and catches up from the primary's WAL by
// sequence range — frames, not a snapshot reset.
func TestFollowerCatchUpFromWALTail(t *testing.T) {
	ctx := context.Background()
	fDir := t.TempDir()
	follower := startReplNode(t, fDir, ReplicationOptions{FollowerOf: "x", ShipInterval: 10 * time.Millisecond})
	primary := startReplNode(t, t.TempDir(), ReplicationOptions{
		Followers:    []string{follower.srv.URL},
		ShipInterval: 10 * time.Millisecond,
	})

	if err := primary.client.Submit(ctx, SubmissionRequest{Account: "a0", Task: 0, Value: 1, Time: at(0)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "initial replication", func() bool {
		st, err := follower.client.ReplStatus(ctx)
		return err == nil && st.DurableSeq == primary.d.durableSeq()
	})

	// Follower goes down; primary keeps writing.
	addr := follower.srv.Listener.Addr().String()
	follower.stop()
	for i := 1; i <= 5; i++ {
		if err := primary.client.Submit(ctx, SubmissionRequest{Account: fmt.Sprintf("a%d", i), Task: 0, Value: float64(i), Time: at(0)}); err != nil {
			t.Fatal(err)
		}
	}

	// Follower restarts on the same address with the same data dir.
	restarted := restartReplNodeAt(t, fDir, addr, ReplicationOptions{FollowerOf: "x", ShipInterval: 10 * time.Millisecond})
	waitFor(t, 5*time.Second, "catch-up after restart", func() bool {
		st, err := restarted.client.ReplStatus(ctx)
		return err == nil && st.DurableSeq == primary.d.durableSeq()
	})
	st, _ := restarted.store.Stats(ctx)
	if st.Accounts != 6 {
		t.Fatalf("follower has %d accounts after catch-up, want 6", st.Accounts)
	}
	// Same epoch, cursor behind → the WAL-tail path, no snapshot reset.
	if n := counterVal(restarted.reg, "repl.snapshot_resets"); n != 0 {
		t.Errorf("catch-up used %d snapshot resets, want 0 (frames path)", n)
	}
	waitFor(t, 2*time.Second, "follower lag to zero", func() bool {
		st, err := restarted.client.ReplStatus(ctx)
		return err == nil && st.Lag == 0
	})
}

// restartReplNodeAt reopens a replica's data dir and serves it on a
// specific listen address (a previous incarnation's), so primaries keep
// shipping to the configured endpoint.
func restartReplNodeAt(t *testing.T, dir, addr string, ropts ReplicationOptions) *replNode {
	t.Helper()
	store, d, _, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if ropts.Registry == nil {
		ropts.Registry = reg
	}
	repl := NewReplication(store, d, ropts)
	srv := httptest.NewUnstartedServer(NewServerWithOptions(store, ServerOptions{
		Registry:     reg,
		Replication:  repl,
		DisableWatch: ropts.FollowerOf != "",
	}))
	l, err := listenTCP(addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv.Listener.Close()
	srv.Listener = l
	srv.Start()
	n := &replNode{
		t: t, dir: dir, store: store, d: d, repl: repl, reg: reg, srv: srv,
		client: NewClient(srv.URL, WithRetries(0)),
	}
	t.Cleanup(n.stop)
	return n
}

// TestSemiSyncNeverAcksWithoutFollowerDurability is the redundancy
// contract: in semisync mode a successful ack implies the record is
// durable on >= 2 replicas, and a write whose follower never confirms is
// NOT acked — so a primary killed before the follower ack has lost
// nothing the client was told was safe.
func TestSemiSyncNeverAcksWithoutFollowerDurability(t *testing.T) {
	ctx := context.Background()

	// No followers configured at all: semisync must refuse rather than
	// silently degrade to async.
	lone := startReplNode(t, t.TempDir(), ReplicationOptions{
		Mode:            AckSemiSync,
		SemiSyncTimeout: 100 * time.Millisecond,
	})
	if err := lone.client.Submit(ctx, SubmissionRequest{Account: "solo", Task: 0, Value: 1, Time: at(0)}); !errors.Is(err, ErrReplicaLag) {
		t.Fatalf("semisync with no followers acked: %v, want ErrReplicaLag", err)
	}

	// With a live follower every ack implies follower durability.
	follower := startReplNode(t, t.TempDir(), ReplicationOptions{FollowerOf: "x", ShipInterval: 5 * time.Millisecond})
	primary := startReplNode(t, t.TempDir(), ReplicationOptions{
		Mode:            AckSemiSync,
		Followers:       []string{follower.srv.URL},
		ShipInterval:    5 * time.Millisecond,
		SemiSyncTimeout: 2 * time.Second,
	})
	for i := 0; i < 5; i++ {
		if err := primary.client.Submit(ctx, SubmissionRequest{Account: fmt.Sprintf("s%d", i), Task: 0, Value: float64(i), Time: at(0)}); err != nil {
			t.Fatalf("semisync submit %d: %v", i, err)
		}
		// The ack just returned: the follower must already hold the record.
		st, err := follower.client.ReplStatus(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.DurableSeq < primary.d.durableSeq() {
			t.Fatalf("acked write %d not durable on follower: follower seq %d < primary %d",
				i, st.DurableSeq, primary.d.durableSeq())
		}
	}

	// Kill the follower (the primary "dies before the follower ack" from
	// the client's perspective): subsequent writes must NOT be acked.
	follower.kill()
	err := primary.client.Submit(ctx, SubmissionRequest{Account: "after-kill", Task: 0, Value: 9, Time: at(0)})
	if !errors.Is(err, ErrReplicaLag) {
		t.Fatalf("submit with dead follower acked: %v, want ErrReplicaLag", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeReplicaLag {
		t.Fatalf("wire code = %+v, want %q", ae, CodeReplicaLag)
	}
	if counterVal(primary.reg, "repl.semisync_timeouts") == 0 {
		t.Error("semisync timeout not counted")
	}
}

// TestPromotionCatchUpAndOldPrimaryRejoin is the full failover arc at the
// protocol level: primary dies, the follower is promoted with a higher
// epoch and accepts writes, and the restarted old primary — demoted to
// follower — converges to the new primary's state via snapshot reset.
func TestPromotionCatchUpAndOldPrimaryRejoin(t *testing.T) {
	ctx := context.Background()
	aDir, bDir := t.TempDir(), t.TempDir()

	b := startReplNode(t, bDir, ReplicationOptions{FollowerOf: "x", ShipInterval: 10 * time.Millisecond})
	a := startReplNode(t, aDir, ReplicationOptions{
		Followers:    []string{b.srv.URL},
		ShipInterval: 10 * time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		if err := a.client.Submit(ctx, SubmissionRequest{Account: fmt.Sprintf("pre-%d", i), Task: 0, Value: float64(i), Time: at(0)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "b catches up", func() bool {
		st, err := b.client.ReplStatus(ctx)
		return err == nil && st.DurableSeq == a.d.durableSeq()
	})

	// A dies; B is promoted at a strictly higher epoch.
	aAddr := a.srv.Listener.Addr().String()
	a.kill()
	st, err := b.client.ReplSetRole(ctx, ReplRoleRequest{
		Role:      RolePrimary,
		Epoch:     1,
		Followers: []string{"http://" + aAddr},
	})
	if err != nil || st.Role != RolePrimary || st.Epoch != 1 {
		t.Fatalf("promotion: %+v, %v", st, err)
	}
	// Promotion is epoch-guarded: re-promoting at the same epoch fails.
	if _, err := b.client.ReplSetRole(ctx, ReplRoleRequest{Role: RolePrimary, Epoch: 1}); err == nil {
		t.Fatal("re-promotion at a non-increasing epoch accepted")
	}

	// Writes now land on B.
	for i := 0; i < 2; i++ {
		if err := b.client.Submit(ctx, SubmissionRequest{Account: fmt.Sprintf("post-%d", i), Task: 0, Value: float64(i), Time: at(0)}); err != nil {
			t.Fatalf("write to promoted primary: %v", err)
		}
	}

	// Old primary rejoins on its old address as a follower; B's shipper
	// reaches it, the epoch handshake forces a snapshot reset, and it
	// converges.
	a2 := restartReplNodeAt(t, aDir, aAddr, ReplicationOptions{FollowerOf: b.srv.URL, ShipInterval: 10 * time.Millisecond})
	waitFor(t, 5*time.Second, "old primary converges", func() bool {
		st, err := a2.client.ReplStatus(ctx)
		return err == nil && st.Role == RoleFollower && st.Epoch == 1 && st.DurableSeq == b.d.durableSeq()
	})
	stats, _ := a2.store.Stats(ctx)
	if stats.Accounts != 5 {
		t.Fatalf("rejoined old primary has %d accounts, want 5", stats.Accounts)
	}
	// Its own lag gauge settles at zero.
	waitFor(t, 2*time.Second, "rejoined lag to zero", func() bool {
		st, err := a2.client.ReplStatus(ctx)
		return err == nil && st.Lag == 0
	})
}

// TestReplEndpointsUnimplementedWithoutReplication: the repl routes on an
// unreplicated node answer the typed 501 wire shape.
func TestReplEndpointsUnimplementedWithoutReplication(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewLocalStore(testTasks(1)), nil))
	defer srv.Close()
	c := NewClient(srv.URL, WithRetries(0))
	_, err := c.ReplStatus(context.Background())
	if !errors.Is(err, ErrUnimplemented) {
		t.Fatalf("repl status on plain node = %v, want ErrUnimplemented", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeUnimplemented || ae.Status != http.StatusNotImplemented {
		t.Fatalf("wire shape = %+v, want code %q status 501", ae, CodeUnimplemented)
	}
}
