package platform

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/truth"
)

// RemoteStore is the Store implementation backed by a Client: every
// operation is one call against another node's /v1 API, with the client's
// retry/backoff/breaker policy. The shard router composes N of these —
// one per shard process — behind the same Server that fronts a
// LocalStore, which is what keeps the wire API identical at every level
// of the topology.
type RemoteStore struct {
	c *Client

	// fenceVersion caches the highest fence version acknowledged by the
	// backing node through this store — FenceVersion() answers from it
	// without a round trip.
	fenceVersion atomic.Uint64

	hookMu   sync.RWMutex
	onSubmit SubmitListener
}

// RemoteStore implements Store, the Pinger health capability, and the
// resharding capabilities (Exporter, Fencer, FencePurger) by forwarding
// to the backing node.
var (
	_ Store       = (*RemoteStore)(nil)
	_ Pinger      = (*RemoteStore)(nil)
	_ Exporter    = (*RemoteStore)(nil)
	_ Fencer      = (*RemoteStore)(nil)
	_ FencePurger = (*RemoteStore)(nil)
)

// NewRemoteStore wraps c as a Store.
func NewRemoteStore(c *Client) *RemoteStore {
	return &RemoteStore{c: c}
}

// Client returns the underlying client (e.g. to probe health directly).
func (r *RemoteStore) Client() *Client { return r.c }

// shardErr keeps an upstream error's sentinel identity when it has one
// and otherwise brands it ErrShardUnavailable: a connection failure or an
// undecodable 5xx from the backing node means the shard, not the request,
// is the problem, and must surface as a retryable 503 — never as the
// internal-error fallback.
func shardErr(err error) error {
	if err == nil {
		return nil
	}
	if code, status := codeForError(err); code != CodeInternal && status != http.StatusInternalServerError {
		return err
	}
	return fmt.Errorf("%w: %v", ErrShardUnavailable, err)
}

// SetSubmitListener installs the acknowledged-submission hook. The
// listener sees the submissions this store acknowledged through its
// client — the router's view, fed to the router's own stream hub.
func (r *RemoteStore) SetSubmitListener(fn SubmitListener) {
	r.hookMu.Lock()
	r.onSubmit = fn
	r.hookMu.Unlock()
}

func (r *RemoteStore) notifySubmitted(items []BatchSubmission) {
	if len(items) == 0 {
		return
	}
	r.hookMu.RLock()
	fn := r.onSubmit
	r.hookMu.RUnlock()
	if fn != nil {
		fn(items)
	}
}

// Tasks lists the backing node's published tasks.
func (r *RemoteStore) Tasks(ctx context.Context) ([]mcs.Task, error) {
	dtos, err := r.c.Tasks(ctx)
	if err != nil {
		return nil, shardErr(err)
	}
	tasks := make([]mcs.Task, len(dtos))
	for i, t := range dtos {
		tasks[i] = mcs.Task{ID: t.ID, Name: t.Name, X: t.X, Y: t.Y}
	}
	return tasks, nil
}

// Submit records one observation on the backing node.
func (r *RemoteStore) Submit(ctx context.Context, account string, task int, value float64, at time.Time) error {
	err := r.c.Submit(ctx, SubmissionRequest{Account: account, Task: task, Value: value, Time: at})
	if err != nil {
		return shardErr(err)
	}
	r.notifySubmitted([]BatchSubmission{{Account: account, Task: task, Value: value, At: at}})
	return nil
}

// SubmitBatch forwards the batch in one POST /v1/reports:batch call and
// maps the positional results back to per-item errors. An envelope
// failure (the whole call failed) lands the same shard error in every
// position — the caller's positional contract holds regardless.
func (r *RemoteStore) SubmitBatch(ctx context.Context, items []BatchSubmission) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	reports := make([]SubmissionRequest, len(items))
	for i, it := range items {
		reports[i] = SubmissionRequest{Account: it.Account, Task: it.Task, Value: it.Value, Time: it.At}
	}
	results, err := r.c.SubmitBatch(ctx, reports)
	if err != nil {
		e := shardErr(err)
		for i := range errs {
			errs[i] = e
		}
		return errs
	}
	var acked []BatchSubmission
	for i, res := range results {
		if errs[i] = res.Err(); errs[i] == nil {
			acked = append(acked, items[i])
		}
	}
	r.notifySubmitted(acked)
	return errs
}

// RecordFingerprint uploads a raw sign-in capture.
func (r *RemoteStore) RecordFingerprint(ctx context.Context, account string, rec mems.Recording) error {
	return shardErr(r.c.RecordFingerprint(ctx, account, rec))
}

// RecordFingerprintFeatures uploads an already-extracted feature vector.
func (r *RemoteStore) RecordFingerprintFeatures(ctx context.Context, account string, features []float64) error {
	return shardErr(r.c.RecordFeatureFingerprint(ctx, account, features))
}

// Dataset downloads the backing node's full campaign snapshot.
func (r *RemoteStore) Dataset(ctx context.Context) (*mcs.Dataset, error) {
	ds, err := r.c.Dataset(ctx)
	if err != nil {
		return nil, shardErr(err)
	}
	return ds, nil
}

// Aggregate runs the aggregation on the backing node and maps the wire
// response back to a truth.Result: unestimated tasks become NaN (the
// in-process convention) and the uncertainty vector is rebuilt from the
// per-task DTOs.
func (r *RemoteStore) Aggregate(ctx context.Context, method string) (truth.Result, []float64, error) {
	out, err := r.c.Aggregate(ctx, method)
	if err != nil {
		return truth.Result{}, nil, shardErr(err)
	}
	res := truth.Result{
		Iterations:     out.Meta.Iterations,
		Converged:      out.Meta.Converged,
		Degraded:       out.Meta.Degraded,
		DegradedReason: out.Meta.DegradedReason,
	}
	n := len(out.Truths)
	for _, t := range out.Truths {
		if t.Task >= n {
			n = t.Task + 1
		}
	}
	res.Truths = make([]float64, n)
	unc := make([]float64, n)
	for i := range res.Truths {
		res.Truths[i] = math.NaN()
		unc[i] = math.NaN()
	}
	for _, t := range out.Truths {
		if t.Task < 0 || !t.Estimated {
			continue
		}
		res.Truths[t.Task] = t.Value
		if t.Uncertainty != 0 {
			unc[t.Task] = t.Uncertainty
		}
	}
	return res, unc, nil
}

// Stats fetches the backing node's store summary.
func (r *RemoteStore) Stats(ctx context.Context) (StatsResponse, error) {
	stats, err := r.c.Stats(ctx)
	if err != nil {
		return StatsResponse{}, shardErr(err)
	}
	return stats, nil
}

// Ready probes the backing node's /readyz (see Client.Ready).
func (r *RemoteStore) Ready(ctx context.Context) (ReadyzResponse, error) {
	return r.c.Ready(ctx)
}

// ExportSince reads the backing node's decoded WAL tail (the migration
// coordinator's catch-up stream during an online reshard).
func (r *RemoteStore) ExportSince(ctx context.Context, from uint64, max int) (ExportBatch, error) {
	batch, err := r.c.ReplExport(ctx, ExportRequest{FromSeq: from, MaxRecords: max})
	if err != nil {
		return ExportBatch{}, shardErr(err)
	}
	return batch, nil
}

// Fence tells the backing node to refuse further mutations for accounts
// with wrong_shard at ringVersion (the online-reshard cutover).
func (r *RemoteStore) Fence(ctx context.Context, ringVersion uint64, accounts []string) error {
	resp, err := r.c.Fence(ctx, FenceRequest{RingVersion: ringVersion, Accounts: accounts})
	if err != nil {
		return shardErr(err)
	}
	// Remember the highest acknowledged fence version (concurrent callers
	// may land out of order).
	for {
		cur := r.fenceVersion.Load()
		if resp.FenceVersion <= cur || r.fenceVersion.CompareAndSwap(cur, resp.FenceVersion) {
			return nil
		}
	}
}

// FenceVersion returns the highest fence version the backing node has
// acknowledged through this store (0 until a Fence call succeeds — it is
// a local cache, not a remote read).
func (r *RemoteStore) FenceVersion() uint64 { return r.fenceVersion.Load() }

// PurgeFenced tells the backing node to drop the data of accounts fenced
// at or below ringVersion, keeping the fence (the post-migration GC).
func (r *RemoteStore) PurgeFenced(ctx context.Context, ringVersion uint64) (int, error) {
	resp, err := r.c.PurgeFenced(ctx, PurgeRequest{RingVersion: ringVersion})
	if err != nil {
		return 0, shardErr(err)
	}
	return resp.Purged, nil
}
