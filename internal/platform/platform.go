// Package platform implements a cloud MCS platform as an HTTP service: it
// publishes sensing tasks, ingests timestamped submissions and sign-in
// fingerprint captures from accounts, and serves Sybil-resistant
// aggregation on demand. It is the system-shaped wrapper around the
// library: cmd/mcsplatform serves a single durable node, cmd/mcsrouter
// serves a consistent-hash sharded fleet of them (internal/platform/shard),
// cmd/mcsagent drives either, and the JSON API mirrors what the paper's
// crowd of volunteers did by hand.
package platform

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"sybiltd/internal/core"
	"sybiltd/internal/fingerprint"
	"sybiltd/internal/grouping"
	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/obs"
	"sybiltd/internal/truth"
)

// LocalStore is the platform's in-memory state: the single-node Store
// implementation. It is safe for concurrent use.
type LocalStore struct {
	mu       sync.RWMutex
	tasks    []mcs.Task
	accounts map[string]*accountState
	order    []string // account registration order, for stable indices
	// maxAccounts bounds registrations (0 = unlimited); a public campaign
	// needs some cap or a Sybil flood can exhaust memory before any
	// aggregation-level defense runs.
	maxAccounts int
	// journal, when non-nil, makes every mutation durable: the operation
	// is appended and fsynced to a write-ahead log before it is applied
	// (and before the caller sees nil). A nil journal — the default — is
	// the original purely in-memory store. Attached by OpenDurable.
	journal *Durability
	// repl, when non-nil, is the node's replication manager: writes are
	// gated on holding the primary role, reads on the follower staleness
	// bound, and acks on the configured mode. Attached by NewReplication
	// before the store is shared.
	repl *Replication

	// fenced maps account → ring version at which an online reshard moved
	// the account off this shard; mutations naming a fenced account are
	// refused with *WrongShardError. fenceVersion is the highest version
	// any fence here was installed at — mutations stamped with an older
	// ring version are refused outright, which is what stops a router that
	// missed a flip from writing through a stale topology. Both survive
	// restarts (opFence WAL records + the snapshot envelope) and ship to
	// followers like any other write.
	fenced       map[string]uint64
	fenceVersion uint64

	// onSubmit, when set, receives every acknowledged submission (single
	// and batch) after durability settles — the feed for the truth-watch
	// stream hub. Guarded by hookMu, not mu: the callback runs outside the
	// store lock, on the acknowledging goroutine.
	hookMu   sync.RWMutex
	onSubmit SubmitListener
}

// LocalStore implements Store and the resharding Fencer and FencePurger
// capabilities.
var (
	_ Store       = (*LocalStore)(nil)
	_ Fencer      = (*LocalStore)(nil)
	_ FencePurger = (*LocalStore)(nil)
)

// SubmitListener observes acknowledged submissions. Items are only ever
// reports the store has applied (and, on a durable store, fsynced). The
// callback runs synchronously on the ack path and must be cheap and
// non-blocking; the stream hub's Feed qualifies.
type SubmitListener func(items []BatchSubmission)

// SetSubmitListener installs (or, with nil, removes) the acknowledged-
// submission hook. At most one listener is active; a later call replaces
// the earlier one.
func (s *LocalStore) SetSubmitListener(fn SubmitListener) {
	s.hookMu.Lock()
	s.onSubmit = fn
	s.hookMu.Unlock()
}

// notifySubmitted delivers acknowledged items to the listener, if any.
func (s *LocalStore) notifySubmitted(items []BatchSubmission) {
	if len(items) == 0 {
		return
	}
	s.hookMu.RLock()
	fn := s.onSubmit
	s.hookMu.RUnlock()
	if fn != nil {
		fn(items)
	}
}

// SetMaxAccounts caps the number of accounts the store accepts; 0 removes
// the cap. Existing accounts are never evicted.
func (s *LocalStore) SetMaxAccounts(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxAccounts = n
}

type accountState struct {
	observations map[int]mcs.Observation
	fingerprint  []float64
}

// NewLocalStore creates an in-memory store with the given tasks.
func NewLocalStore(tasks []mcs.Task) *LocalStore {
	ts := make([]mcs.Task, len(tasks))
	copy(ts, tasks)
	for i := range ts {
		ts[i].ID = i
		if ts[i].Name == "" {
			ts[i].Name = fmt.Sprintf("T%d", i+1)
		}
	}
	return &LocalStore{tasks: ts, accounts: make(map[string]*accountState)}
}

// Errors returned by store and API operations. Each maps to a stable wire
// code (see codeForError); Client decodes the code back into the same
// sentinel so errors.Is works on both sides of the HTTP boundary.
var (
	ErrTooManyAccounts    = errors.New("platform: account limit reached")
	ErrUnknownTask        = errors.New("platform: unknown task")
	ErrDuplicateReport    = errors.New("platform: account already reported on this task")
	ErrEmptyAccount       = errors.New("platform: empty account ID")
	ErrBadFingerprint     = errors.New("platform: malformed fingerprint capture")
	ErrUnknownAggregation = errors.New("platform: unknown aggregation method")
	ErrMalformedRequest   = errors.New("platform: malformed request")
	// ErrDurability means the write-ahead log could not persist the
	// operation; the mutation was NOT applied (the store never
	// acknowledges what it cannot make durable). Maps to HTTP 503, which
	// the client treats as retryable.
	ErrDurability = errors.New("platform: durability failure")
	// ErrRateLimited means the account exceeded its token-bucket budget.
	// Maps to HTTP 429 with a Retry-After header; the client honors the
	// advertised wait before retrying.
	ErrRateLimited = errors.New("platform: rate limited")
	// ErrOverloaded means the platform shed the request — the admission
	// gate was saturated, the wait queue full, or the request deadline
	// expired before the work finished. Nothing was applied. Maps to
	// HTTP 503 with a Retry-After header.
	ErrOverloaded = errors.New("platform: overloaded")
	// ErrCircuitOpen is returned client-side when the circuit breaker is
	// open: the platform has failed repeatedly and the client refuses to
	// send until the cooldown elapses and a probe succeeds.
	ErrCircuitOpen = errors.New("platform: circuit breaker open")
	// ErrShardUnavailable means a sharded store could not complete the
	// operation because every covering shard was unreachable. Partial
	// reads degrade instead (ResponseMeta.Degraded); this error is the
	// nothing-answered case. Maps to HTTP 503.
	ErrShardUnavailable = errors.New("platform: shard unavailable")
	// ErrNotPrimary means the write landed on a replica-group follower.
	// Followers never take client writes — the caller must go through the
	// group's primary (the router refreshes its view and retries). Maps to
	// HTTP 503.
	ErrNotPrimary = errors.New("platform: not the primary replica")
	// ErrReplicaLag means a replication guarantee could not be met: a
	// semi-sync write timed out waiting for a follower ack (the record IS
	// durable locally, so a retry may see ErrDuplicateReport — the usual
	// ambiguous-ack contract), or a read hit a follower trailing the
	// primary beyond its staleness bound. Maps to HTTP 503.
	ErrReplicaLag = errors.New("platform: replica lag")
	// ErrUnimplemented means the endpoint exists in the API surface but
	// this node does not serve it (e.g. truth-watch streams on a replica
	// follower). Maps to HTTP 501; the client does NOT retry — the answer
	// will not change.
	ErrUnimplemented = errors.New("platform: unimplemented")
	// ErrWrongShard means the account addressed by a mutation no longer
	// lives on this shard: an online reshard moved it to another replica
	// group and this node was fenced. The write was NOT applied. Maps to
	// HTTP 503 with the current ring version in the body; the router
	// refreshes its topology and re-routes instead of retrying here (a
	// retry against a fenced shard can never succeed). Returned as a
	// *WrongShardError so callers can read the version.
	ErrWrongShard = errors.New("platform: wrong shard for account")
)

// WrongShardError is the typed form of ErrWrongShard: the refusal carries
// the ring version at which this shard was fenced, so a stale router
// learns how far behind its topology is. errors.Is(err, ErrWrongShard)
// matches it.
type WrongShardError struct {
	// RingVersion is the ring version the fence was installed at — the
	// minimum version a router must hold to route correctly past it.
	RingVersion uint64
}

func (e *WrongShardError) Error() string {
	return fmt.Sprintf("platform: wrong shard for account (ring version %d)", e.RingVersion)
}

// Is makes errors.Is(err, ErrWrongShard) succeed on the typed error.
func (e *WrongShardError) Is(target error) bool { return target == ErrWrongShard }

// Fencer is the capability interface for online resharding: a store that
// can durably refuse writes for accounts the ring has moved elsewhere.
// LocalStore implements it; RemoteStore forwards it over the wire. The
// sharded composite store does NOT implement it — fences are installed on
// individual donor shards by the migration coordinator.
type Fencer interface {
	// Fence marks accounts as moved away as of ringVersion: every later
	// mutation naming one of them — and every mutation stamped with a ring
	// version below ringVersion — is refused with a *WrongShardError. The
	// fence is journaled (and replicated) like any write, so it survives
	// crashes and follower promotion.
	Fence(ctx context.Context, ringVersion uint64, accounts []string) error
	// FenceVersion returns the highest ring version this store has been
	// fenced at (0 = never fenced).
	FenceVersion() uint64
}

// FencePurger is the post-migration GC capability: a store that can drop
// the data of accounts it fenced, once the migration that fenced them has
// durably completed. Without it, a donor carries every moved account's
// observations in memory — and in every snapshot — forever. The purge
// keeps the fence map and the fence-version watermark: stale writers must
// still get wrong_shard, because dropping the fence would let a
// pre-flip-topology router silently re-create a moved account here.
type FencePurger interface {
	// PurgeFenced drops the stored data of every account fenced at or
	// below ringVersion and returns how many accounts were purged. The
	// purge is journaled and replicated like any write. Idempotent: a
	// second purge at the same version finds nothing to drop.
	PurgeFenced(ctx context.Context, ringVersion uint64) (int, error)
}

// isFinite reports whether v is a usable measurement. NaN and ±Inf are
// rejected at the store boundary: a single non-finite observation
// poisons every weighted mean downstream, which for a truth-discovery
// platform is a one-report data-poisoning attack.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Tasks returns a copy of the published tasks.
func (s *LocalStore) Tasks(ctx context.Context) ([]mcs.Task, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]mcs.Task, len(s.tasks))
	copy(out, s.tasks)
	return out, nil
}

// roomForAccountLocked fails when registering one more account would
// exceed the cap. Caller must hold mu.
func (s *LocalStore) roomForAccountLocked() error {
	if s.maxAccounts > 0 && len(s.accounts) >= s.maxAccounts {
		return fmt.Errorf("%w (%d)", ErrTooManyAccounts, s.maxAccounts)
	}
	return nil
}

// registerAccountLocked creates the account state. Caller must hold mu
// and have validated the cap via roomForAccountLocked.
func (s *LocalStore) registerAccountLocked(id string) *accountState {
	st := &accountState{observations: make(map[int]mcs.Observation)}
	s.accounts[id] = st
	s.order = append(s.order, id)
	return st
}

// Submit records one observation for an account. Each account may report
// on each task at most once (§III-C). The mutation is fully validated
// before it is journaled, and journaled (synced to the WAL) before it is
// applied or acknowledged.
//
// An expired context is refused before the mutation is journaled or
// applied, so a shed request is never half-acknowledged. The check runs
// again under the store lock, immediately before the WAL fsync — the
// expensive step a deadline most wants to skip. Once journaling starts
// the operation always completes: a journaled-but-unapplied record would
// be the torn state durability exists to prevent.
func (s *LocalStore) Submit(ctx context.Context, account string, task int, value float64, at time.Time) error {
	if account == "" {
		return ErrEmptyAccount
	}
	if !isFinite(value) {
		return fmt.Errorf("%w: non-finite observation value %v", ErrMalformedRequest, value)
	}
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	tok, err := s.submitLocked(ctx, account, task, value, at)
	if err != nil {
		return err
	}
	if s.journal != nil {
		// Under group commit the fsync that settles the token runs here,
		// outside the store lock, shared with every concurrent submitter.
		if err := s.journal.waitDurable(tok); err != nil {
			return err
		}
	}
	if s.repl != nil {
		// Semi-sync: the ack waits for a follower to hold the record too.
		if err := s.repl.settle(ctx, tok); err != nil {
			return err
		}
	}
	s.notifySubmitted([]BatchSubmission{{Account: account, Task: task, Value: value, At: at}})
	return nil
}

// writeAllowed gates client mutations by replica role: a follower never
// takes writes directly (shipped frames arrive through the replication
// manager, not this path).
func (s *LocalStore) writeAllowed() error {
	if s.repl == nil {
		return nil
	}
	return s.repl.allowWrite()
}

// readAllowed gates reads by follower staleness (no-op unless a
// MaxReadLag bound is configured).
func (s *LocalStore) readAllowed() error {
	if s.repl == nil {
		return nil
	}
	return s.repl.allowRead()
}

// submitLocked validates, journals, and applies one submission under the
// store lock, returning the commit token the caller must redeem (outside
// the lock) before acknowledging.
func (s *LocalStore) submitLocked(ctx context.Context, account string, task int, value float64, at time.Time) (commitToken, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if task < 0 || task >= len(s.tasks) {
		return commitToken{}, fmt.Errorf("%w: %d", ErrUnknownTask, task)
	}
	if _, moved := s.fenced[account]; moved {
		return commitToken{}, &WrongShardError{RingVersion: s.fenceVersion}
	}
	st := s.accounts[account]
	if st == nil {
		if err := s.roomForAccountLocked(); err != nil {
			return commitToken{}, err
		}
	} else if _, dup := st.observations[task]; dup {
		return commitToken{}, fmt.Errorf("%w: account %q task %d", ErrDuplicateReport, account, task)
	}
	if err := ctx.Err(); err != nil {
		return commitToken{}, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	var tok commitToken
	if s.journal != nil {
		var err error
		tok, err = s.journal.appendLocked(walRecord{Op: opSubmit, Account: account, Task: task, Value: value, Time: at})
		if err != nil {
			return commitToken{}, err
		}
	}
	if st == nil {
		st = s.registerAccountLocked(account)
	}
	st.observations[task] = mcs.Observation{Task: task, Value: value, Time: at}
	obs.Default().Counter("platform.submissions").Inc()
	if s.journal != nil {
		s.journal.maybeCompactLocked()
	}
	return tok, nil
}

// BatchSubmission is one item of a bulk submit (Store.SubmitBatch).
type BatchSubmission struct {
	Account string
	Task    int
	Value   float64
	At      time.Time
}

// SubmitBatch records many observations in one WAL write + one fsync.
// Items are validated independently — a duplicate or malformed item gets
// its own error and does not poison the rest of the batch — and the
// per-item errors come back positionally (nil = acknowledged durable).
// Deadline semantics match Submit: the batch is refused whole before the
// journal write begins, never after.
func (s *LocalStore) SubmitBatch(ctx context.Context, items []BatchSubmission) []error {
	errs := make([]error, len(items))
	if len(items) == 0 {
		return errs
	}
	if err := s.writeAllowed(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	if err := ctx.Err(); err != nil {
		e := fmt.Errorf("%w: %v", ErrOverloaded, err)
		for i := range errs {
			errs[i] = e
		}
		return errs
	}
	tok, applied := s.submitBatchLocked(ctx, items, errs)
	if s.journal != nil && len(applied) > 0 {
		if err := s.journal.waitDurable(tok); err != nil {
			for _, i := range applied {
				errs[i] = err
			}
		}
	}
	if s.repl != nil && len(applied) > 0 {
		// One follower ack covers the whole batch (the token carries the
		// last sequence number journaled).
		if err := s.repl.settle(ctx, tok); err != nil {
			for _, i := range applied {
				if errs[i] == nil {
					errs[i] = err
				}
			}
		}
	}
	// Feed the acknowledged subset (applied and durably settled) to the
	// stream listener.
	var acked []BatchSubmission
	for _, i := range applied {
		if errs[i] == nil {
			acked = append(acked, items[i])
		}
	}
	s.notifySubmitted(acked)
	return errs
}

// submitBatchLocked validates each item (later items see earlier valid
// ones as already applied — an in-batch duplicate is a duplicate, and the
// account cap counts accounts the batch itself registers), journals every
// valid item as one WAL batch, and applies them. Per-item errors land in
// errs; the returned indexes are the items applied, covered by the token.
func (s *LocalStore) submitBatchLocked(ctx context.Context, items []BatchSubmission, errs []error) (commitToken, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type reportKey struct {
		account string
		task    int
	}
	inBatch := make(map[reportKey]bool)
	newAccounts := make(map[string]bool)
	valid := make([]int, 0, len(items))
	for i, it := range items {
		if it.Account == "" {
			errs[i] = ErrEmptyAccount
			continue
		}
		if !isFinite(it.Value) {
			errs[i] = fmt.Errorf("%w: non-finite observation value %v", ErrMalformedRequest, it.Value)
			continue
		}
		if it.Task < 0 || it.Task >= len(s.tasks) {
			errs[i] = fmt.Errorf("%w: %d", ErrUnknownTask, it.Task)
			continue
		}
		if _, moved := s.fenced[it.Account]; moved {
			errs[i] = &WrongShardError{RingVersion: s.fenceVersion}
			continue
		}
		st := s.accounts[it.Account]
		dup := inBatch[reportKey{it.Account, it.Task}]
		if !dup && st != nil {
			_, dup = st.observations[it.Task]
		}
		if dup {
			errs[i] = fmt.Errorf("%w: account %q task %d", ErrDuplicateReport, it.Account, it.Task)
			continue
		}
		if st == nil && !newAccounts[it.Account] {
			if s.maxAccounts > 0 && len(s.accounts)+len(newAccounts) >= s.maxAccounts {
				errs[i] = fmt.Errorf("%w (%d)", ErrTooManyAccounts, s.maxAccounts)
				continue
			}
			newAccounts[it.Account] = true
		}
		inBatch[reportKey{it.Account, it.Task}] = true
		valid = append(valid, i)
	}
	if len(valid) == 0 {
		return commitToken{}, nil
	}
	if err := ctx.Err(); err != nil {
		e := fmt.Errorf("%w: %v", ErrOverloaded, err)
		for _, i := range valid {
			errs[i] = e
		}
		return commitToken{}, nil
	}
	var tok commitToken
	if s.journal != nil {
		recs := make([]walRecord, len(valid))
		for j, i := range valid {
			it := items[i]
			recs[j] = walRecord{Op: opSubmit, Account: it.Account, Task: it.Task, Value: it.Value, Time: it.At}
		}
		var err error
		tok, err = s.journal.appendBatchLocked(recs)
		if err != nil {
			// The batch write is all-or-nothing at the process level (the
			// writer repaired any partial frame), so nothing was applied.
			for _, i := range valid {
				errs[i] = err
			}
			return commitToken{}, nil
		}
	}
	for _, i := range valid {
		it := items[i]
		st := s.accounts[it.Account]
		if st == nil {
			st = s.registerAccountLocked(it.Account)
		}
		st.observations[it.Task] = mcs.Observation{Task: it.Task, Value: it.Value, Time: it.At}
	}
	obs.Default().Counter("platform.submissions").Add(int64(len(valid)))
	if s.journal != nil {
		s.journal.maybeCompactLocked()
	}
	return tok, valid
}

// RecordFingerprint extracts Table II features from a raw sign-in capture
// and stores them for the account. All six streams must be non-empty and
// of equal length. The journal stores the extracted feature vector, not
// the raw capture: extraction is deterministic and the features are the
// only thing the store keeps, so logging them keeps the WAL small.
func (s *LocalStore) RecordFingerprint(ctx context.Context, account string, rec mems.Recording) error {
	if account == "" {
		return ErrEmptyAccount
	}
	n := rec.Len()
	if n == 0 || rec.SampleRate <= 0 ||
		len(rec.AccelY) != n || len(rec.AccelZ) != n ||
		len(rec.GyroX) != n || len(rec.GyroY) != n || len(rec.GyroZ) != n {
		return ErrBadFingerprint
	}
	vec := fingerprint.Extract(rec)
	for _, f := range vec {
		if !isFinite(f) {
			return fmt.Errorf("%w: capture yields non-finite features", ErrBadFingerprint)
		}
	}
	return s.setFingerprint(ctx, account, vec)
}

// RecordFingerprintFeatures stores an already-extracted fingerprint
// feature vector for the account (the replay path: archived campaigns
// hold features, not raw captures).
func (s *LocalStore) RecordFingerprintFeatures(ctx context.Context, account string, features []float64) error {
	if account == "" {
		return ErrEmptyAccount
	}
	if len(features) == 0 {
		return ErrBadFingerprint
	}
	for _, f := range features {
		if !isFinite(f) {
			return fmt.Errorf("%w: non-finite feature %v", ErrBadFingerprint, f)
		}
	}
	return s.setFingerprint(ctx, account, append([]float64(nil), features...))
}

// setFingerprint journals and applies a validated feature vector. vec
// ownership transfers to the store. Deadline semantics match Submit:
// refuse before the journal fsync, never after.
func (s *LocalStore) setFingerprint(ctx context.Context, account string, vec []float64) error {
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	tok, err := s.setFingerprintLocked(ctx, account, vec)
	if err != nil {
		return err
	}
	if s.journal != nil {
		if err := s.journal.waitDurable(tok); err != nil {
			return err
		}
	}
	if s.repl != nil {
		return s.repl.settle(ctx, tok)
	}
	return nil
}

func (s *LocalStore) setFingerprintLocked(ctx context.Context, account string, vec []float64) (commitToken, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, moved := s.fenced[account]; moved {
		return commitToken{}, &WrongShardError{RingVersion: s.fenceVersion}
	}
	st := s.accounts[account]
	if st == nil {
		if err := s.roomForAccountLocked(); err != nil {
			return commitToken{}, err
		}
	}
	if err := ctx.Err(); err != nil {
		return commitToken{}, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	var tok commitToken
	if s.journal != nil {
		var err error
		tok, err = s.journal.appendLocked(walRecord{Op: opFingerprint, Account: account, Features: vec})
		if err != nil {
			return commitToken{}, err
		}
	}
	if st == nil {
		st = s.registerAccountLocked(account)
	}
	st.fingerprint = vec
	obs.Default().Counter("platform.fingerprints").Inc()
	if s.journal != nil {
		s.journal.maybeCompactLocked()
	}
	return tok, nil
}

// Fence durably marks accounts as moved off this shard as of ringVersion
// (see Fencer). Fencing is a write: it is journaled and fsynced before it
// takes effect, ships to followers through the regular WAL stream, and on
// a semi-sync primary the ack waits for a follower to hold it — so a
// promoted follower is exactly as fenced as the primary it replaces.
// Fencing an already-fenced account raises its version; fencing with an
// older version than an existing fence is a no-op for that account but
// still records the max version seen. Idempotent by construction, so the
// migration coordinator can re-issue it on every resume.
func (s *LocalStore) Fence(ctx context.Context, ringVersion uint64, accounts []string) error {
	if ringVersion == 0 {
		return fmt.Errorf("%w: fence needs a ring version", ErrMalformedRequest)
	}
	if err := s.writeAllowed(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	tok, err := s.fenceLocked(ctx, ringVersion, accounts)
	if err != nil {
		return err
	}
	if s.journal != nil {
		if err := s.journal.waitDurable(tok); err != nil {
			return err
		}
	}
	if s.repl != nil {
		return s.repl.settle(ctx, tok)
	}
	return nil
}

func (s *LocalStore) fenceLocked(ctx context.Context, ringVersion uint64, accounts []string) (commitToken, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return commitToken{}, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	var tok commitToken
	if s.journal != nil {
		var err error
		tok, err = s.journal.appendLocked(walRecord{Op: opFence, Ring: ringVersion, Accounts: accounts})
		if err != nil {
			return commitToken{}, err
		}
	}
	s.applyFenceLocked(ringVersion, accounts)
	obs.Default().Counter("platform.fences").Inc()
	if s.journal != nil {
		s.journal.maybeCompactLocked()
	}
	return tok, nil
}

// applyFenceLocked installs the fence in memory. Shared by the client
// path, WAL replay, and snapshot adoption; caller must hold mu.
func (s *LocalStore) applyFenceLocked(ringVersion uint64, accounts []string) {
	if s.fenced == nil {
		s.fenced = make(map[string]uint64)
	}
	for _, a := range accounts {
		if a == "" {
			continue
		}
		if ringVersion > s.fenced[a] {
			s.fenced[a] = ringVersion
		}
	}
	if ringVersion > s.fenceVersion {
		s.fenceVersion = ringVersion
	}
}

// FenceVersion returns the highest ring version this store was fenced at
// (0 = never fenced). The HTTP layer uses it to refuse mutations stamped
// with a stale ring version.
func (s *LocalStore) FenceVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fenceVersion
}

// fenceStateLocked exports the fence map for the snapshot envelope (the
// WAL is reset on compaction, so the fence must ride in the snapshot the
// same way the replication epoch does). Caller must hold mu.
func (s *LocalStore) fenceStateLocked() (map[string]uint64, uint64) {
	if len(s.fenced) == 0 && s.fenceVersion == 0 {
		return nil, 0
	}
	out := make(map[string]uint64, len(s.fenced))
	for a, v := range s.fenced {
		out[a] = v
	}
	return out, s.fenceVersion
}

// resetFenceLocked replaces the fence state wholesale (snapshot adoption
// on a follower). Caller must hold mu.
func (s *LocalStore) resetFenceLocked(fenced map[string]uint64, version uint64) {
	s.fenced = nil
	s.fenceVersion = 0
	if len(fenced) > 0 || version > 0 {
		s.fenced = make(map[string]uint64, len(fenced))
		for a, v := range fenced {
			s.fenced[a] = v
		}
		s.fenceVersion = version
	}
}

// PurgeFenced durably drops the data of every account fenced at or below
// ringVersion (see FencePurger) — the GC the migration coordinator runs
// after a reshard completes. Like Fence, the purge is a write: journaled
// and fsynced before it takes effect, shipped to followers through the
// regular WAL stream, and settled under the configured ack mode, so a
// promoted follower has purged exactly what its dead primary had. The
// fence map and fence-version watermark survive: stale writers still get
// wrong_shard, only the moved data is released. Nothing is journaled when
// there is nothing to purge, so re-issuing it is free.
func (s *LocalStore) PurgeFenced(ctx context.Context, ringVersion uint64) (int, error) {
	if ringVersion == 0 {
		return 0, fmt.Errorf("%w: purge needs a ring version", ErrMalformedRequest)
	}
	if err := s.writeAllowed(); err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	n, tok, err := s.purgeLocked(ctx, ringVersion)
	if err != nil || n == 0 {
		return n, err
	}
	if s.journal != nil {
		if err := s.journal.waitDurable(tok); err != nil {
			return 0, err
		}
	}
	if s.repl != nil {
		return n, s.repl.settle(ctx, tok)
	}
	return n, nil
}

func (s *LocalStore) purgeLocked(ctx context.Context, ringVersion uint64) (int, commitToken, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return 0, commitToken{}, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	// Count first: an empty purge must not burn a WAL record (the
	// coordinator re-issues purges freely on resume).
	pending := 0
	for a, v := range s.fenced {
		if v <= ringVersion && s.accounts[a] != nil {
			pending++
		}
	}
	if pending == 0 {
		return 0, commitToken{}, nil
	}
	var tok commitToken
	if s.journal != nil {
		var err error
		tok, err = s.journal.appendLocked(walRecord{Op: opUnfencePurge, Ring: ringVersion})
		if err != nil {
			return 0, commitToken{}, err
		}
	}
	n := s.applyPurgeLocked(ringVersion)
	obs.Default().Counter("platform.purged_accounts").Add(int64(n))
	if s.journal != nil {
		s.journal.maybeCompactLocked()
	}
	return n, tok, nil
}

// applyPurgeLocked drops fenced accounts' data in memory. Shared by the
// client path, WAL replay, and the follower apply path; caller must hold
// mu. Returns how many accounts were dropped.
func (s *LocalStore) applyPurgeLocked(ringVersion uint64) int {
	n := 0
	for a, v := range s.fenced {
		if v > ringVersion {
			continue
		}
		if s.accounts[a] != nil {
			delete(s.accounts, a)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if s.accounts[id] != nil {
			kept = append(kept, id)
		}
	}
	s.order = kept
	return n
}

// Dataset snapshots the store as an mcs.Dataset (accounts in registration
// order). The error is always nil on a local store; it exists for the
// Store interface, where a remote or sharded dataset read can fail.
func (s *LocalStore) Dataset(ctx context.Context) (*mcs.Dataset, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	if err := s.readAllowed(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.datasetLocked(), nil
}

// datasetLocked is Dataset for callers that already hold mu (the
// durability snapshot runs under the write lock).
func (s *LocalStore) datasetLocked() *mcs.Dataset {
	ds := &mcs.Dataset{Tasks: make([]mcs.Task, len(s.tasks))}
	copy(ds.Tasks, s.tasks)
	for _, id := range s.order {
		st := s.accounts[id]
		acct := mcs.Account{ID: id}
		for _, o := range st.observations {
			acct.Observations = append(acct.Observations, o)
		}
		// Stable order inside the account.
		acct.Observations = (&acct).SortedObservations()
		if len(st.fingerprint) > 0 {
			acct.Fingerprint = append([]float64(nil), st.fingerprint...)
		}
		ds.Accounts = append(ds.Accounts, acct)
	}
	return ds
}

// NumAccounts returns the number of registered accounts.
func (s *LocalStore) NumAccounts() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.accounts)
}

// Stats summarizes the store.
func (s *LocalStore) Stats(ctx context.Context) (StatsResponse, error) {
	if err := ctx.Err(); err != nil {
		return StatsResponse{}, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	if err := s.readAllowed(); err != nil {
		return StatsResponse{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return StatsResponse{Tasks: len(s.tasks), Accounts: len(s.accounts)}, nil
}

// Aggregate runs the named aggregation method over the current dataset
// and returns the result plus the per-task weighted standard errors (see
// truth.Uncertainty). The context is propagated into the grouping worker
// pools and the truth loop; see AggregateDataset for the degradation
// policy.
func (s *LocalStore) Aggregate(ctx context.Context, method string) (truth.Result, []float64, error) {
	ds, err := s.Dataset(ctx)
	if err != nil {
		return truth.Result{}, nil, err
	}
	return AggregateDataset(ctx, method, ds)
}

// AggregateDataset runs the named aggregation method over ds under the
// platform's serving policy: for the Sybil-resistant framework methods
// graceful degradation is switched on, so a grouping pass cancelled by
// the deadline (or failing outright) yields per-account estimates flagged
// Result.Degraded instead of an error (see core.Framework.RunContext).
// Every Store implementation aggregates through this one function — the
// single-node and the sharded merged-dataset paths are bit-identical on
// identical input.
func AggregateDataset(ctx context.Context, method string, ds *mcs.Dataset) (truth.Result, []float64, error) {
	alg, err := AlgorithmByName(method)
	if err != nil {
		return truth.Result{}, nil, err
	}
	if fw, ok := alg.(core.Framework); ok {
		// Serving policy: a degraded answer beats a failed campaign.
		fw.Config.DegradeOnGroupingFailure = true
		alg = fw
	}
	defer obs.Default().Timer("platform.aggregate_seconds").Start().Stop()
	res, err := truth.RunWithContext(ctx, alg, ds)
	if err != nil {
		return truth.Result{}, nil, fmt.Errorf("platform: aggregate %s: %w", method, err)
	}
	unc, err := truth.Uncertainty(ds, res)
	if err != nil {
		return truth.Result{}, nil, fmt.Errorf("platform: uncertainty %s: %w", method, err)
	}
	return res, unc, nil
}

// AlgorithmByName maps API method names to algorithms.
func AlgorithmByName(method string) (truth.Algorithm, error) {
	switch method {
	case "crh":
		return truth.CRH{}, nil
	case "mean":
		return truth.Mean{}, nil
	case "median":
		return truth.Median{}, nil
	case "td-fp":
		return core.Framework{Grouper: grouping.AGFP{}}, nil
	case "td-ts":
		return core.Framework{Grouper: grouping.AGTS{}}, nil
	case "td-tr":
		return core.Framework{Grouper: grouping.AGTR{Phi: 0.3}}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownAggregation, method)
	}
}
