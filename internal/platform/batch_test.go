package platform

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/obs"
	"sybiltd/internal/wal"
)

// TestSubmitBatchStoreMixed: one bad item must not poison its batch — the
// good items are applied and acknowledged, each bad item gets its own
// typed error, positionally.
func TestSubmitBatchStoreMixed(t *testing.T) {
	s := NewLocalStore(testTasks(3))
	if err := s.Submit(context.Background(), "ana", 0, -80, at(0)); err != nil {
		t.Fatal(err)
	}
	items := []BatchSubmission{
		{Account: "bo", Task: 0, Value: -79, At: at(1)},        // ok
		{Account: "ana", Task: 0, Value: -1, At: at(2)},        // dup vs store
		{Account: "bo", Task: 1, Value: -70, At: at(3)},        // ok
		{Account: "bo", Task: 1, Value: -1, At: at(4)},         // dup within batch
		{Account: "cy", Task: 9, Value: -1, At: at(5)},         // unknown task
		{Account: "cy", Task: 2, Value: math.NaN(), At: at(6)}, // NaN
		{Account: "", Task: 2, Value: -1, At: at(7)},           // empty account
		{Account: "cy", Task: 2, Value: -90, At: at(8)},        // ok
	}
	errs := s.SubmitBatch(context.Background(), items)
	wantSentinels := []error{nil, ErrDuplicateReport, nil, ErrDuplicateReport, ErrUnknownTask, ErrMalformedRequest, ErrEmptyAccount, nil}
	for i, want := range wantSentinels {
		if want == nil {
			if errs[i] != nil {
				t.Errorf("item %d: unexpected error %v", i, errs[i])
			}
		} else if !errors.Is(errs[i], want) {
			t.Errorf("item %d: got %v, want %v", i, errs[i], want)
		}
	}
	// Accepted items landed; rejected ones did not.
	ds, _ := s.Dataset(context.Background())
	if ds.NumAccounts() != 3 { // ana, bo, cy
		t.Errorf("accounts = %d, want 3", ds.NumAccounts())
	}
	want := NewLocalStore(testTasks(3))
	ops := []BatchSubmission{
		{Account: "ana", Task: 0, Value: -80, At: at(0)},
		{Account: "bo", Task: 0, Value: -79, At: at(1)},
		{Account: "bo", Task: 1, Value: -70, At: at(3)},
		{Account: "cy", Task: 2, Value: -90, At: at(8)},
	}
	for _, op := range ops {
		if err := want.Submit(context.Background(), op.Account, op.Task, op.Value, op.At); err != nil {
			t.Fatal(err)
		}
	}
	if signature(t, s) != signature(t, want) {
		t.Error("batch left the store in the wrong state")
	}
}

// TestSubmitBatchAccountCap: the cap counts accounts the batch itself
// registers — item k sees item j<k's registration.
func TestSubmitBatchAccountCap(t *testing.T) {
	s := NewLocalStore(testTasks(3))
	s.SetMaxAccounts(2)
	errs := s.SubmitBatch(context.Background(), []BatchSubmission{
		{Account: "a", Task: 0, Value: -80, At: at(0)},
		{Account: "b", Task: 0, Value: -80, At: at(1)},
		{Account: "c", Task: 0, Value: -80, At: at(2)}, // third account: over cap
		{Account: "a", Task: 1, Value: -70, At: at(3)}, // existing account: fine
	})
	if errs[0] != nil || errs[1] != nil || errs[3] != nil {
		t.Errorf("unexpected errors: %v", errs)
	}
	if !errors.Is(errs[2], ErrTooManyAccounts) {
		t.Errorf("item 2: got %v, want ErrTooManyAccounts", errs[2])
	}
	if s.NumAccounts() != 2 {
		t.Errorf("accounts = %d, want 2", s.NumAccounts())
	}
}

// TestSubmitBatchEmptyAndCancelled covers the trivial and refused-whole
// envelope paths.
func TestSubmitBatchEmptyAndCancelled(t *testing.T) {
	s := NewLocalStore(testTasks(2))
	if errs := s.SubmitBatch(context.Background(), nil); len(errs) != 0 {
		t.Errorf("empty batch returned %d errors", len(errs))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errs := s.SubmitBatch(ctx, []BatchSubmission{{Account: "a", Task: 0, Value: -80, At: at(0)}})
	if !errors.Is(errs[0], ErrOverloaded) {
		t.Errorf("cancelled batch: got %v, want ErrOverloaded", errs[0])
	}
	if s.NumAccounts() != 0 {
		t.Error("cancelled batch mutated the store")
	}
}

// TestSubmitBatchHTTP drives POST /v1/reports:batch through the real
// server and Client.SubmitBatch: per-item wire codes round-trip to the
// same sentinels a single submit would produce.
func TestSubmitBatchHTTP(t *testing.T) {
	_, client := newTestServer(t, 3)
	ctx := context.Background()
	if err := client.Submit(ctx, SubmissionRequest{Account: "ana", Task: 0, Value: -80, Time: at(0)}); err != nil {
		t.Fatal(err)
	}
	results, err := client.SubmitBatch(ctx, []SubmissionRequest{
		{Account: "bo", Task: 0, Value: -79, Time: at(1)},
		{Account: "ana", Task: 0, Value: -1, Time: at(2)}, // duplicate
		{Account: "bo", Task: 7, Value: -1, Time: at(3)},  // unknown task
		{Account: "bo", Task: 1, Value: -70, Time: at(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	if results[0].Err() != nil || results[3].Err() != nil {
		t.Errorf("accepted items carry errors: %v, %v", results[0].Err(), results[3].Err())
	}
	if !errors.Is(results[1].Err(), ErrDuplicateReport) || results[1].Code != CodeDuplicateReport {
		t.Errorf("item 1 = %+v, want duplicate_report", results[1])
	}
	if !errors.Is(results[2].Err(), ErrUnknownTask) || results[2].Code != CodeUnknownTask {
		t.Errorf("item 2 = %+v, want unknown_task", results[2])
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accounts != 2 {
		t.Errorf("accounts = %d, want 2", stats.Accounts)
	}
}

// TestSubmitBatchHTTPRejectsOversized: an envelope above MaxBatchItems is
// refused whole as malformed.
func TestSubmitBatchHTTPRejectsOversized(t *testing.T) {
	_, client := newTestServer(t, 2)
	reports := make([]SubmissionRequest, MaxBatchItems+1)
	for i := range reports {
		reports[i] = SubmissionRequest{Account: fmt.Sprintf("a%d", i), Task: 0, Value: -80, Time: at(0)}
	}
	_, err := client.SubmitBatch(context.Background(), reports)
	if !errors.Is(err, ErrMalformedRequest) {
		t.Errorf("oversized batch: got %v, want ErrMalformedRequest", err)
	}
}

// TestSubmitBatchRateLimitCostProportional: a batch costs its item count
// in rate-limit tokens, all or nothing per account, and a blocked
// account's items are rejected per-item while other accounts proceed.
func TestSubmitBatchRateLimitCostProportional(t *testing.T) {
	store := NewLocalStore(testTasks(4))
	srv := httptest.NewServer(NewServerWithOptions(store, ServerOptions{
		Registry: obs.NewRegistry(),
		Limits:   ServerLimits{RatePerSec: 0.0001, RateBurst: 3},
	}))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, WithHTTPClient(srv.Client()))
	ctx := context.Background()

	// First batch: "heavy" spends its whole bucket (3 tokens for 3 items).
	results, err := client.SubmitBatch(ctx, []SubmissionRequest{
		{Account: "heavy", Task: 0, Value: -80, Time: at(0)},
		{Account: "heavy", Task: 1, Value: -80, Time: at(1)},
		{Account: "heavy", Task: 2, Value: -80, Time: at(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err() != nil {
			t.Fatalf("first batch item %d rejected: %v", i, res.Err())
		}
	}
	// Second batch: "heavy" has no tokens left; "light" is untouched.
	results, err = client.SubmitBatch(ctx, []SubmissionRequest{
		{Account: "heavy", Task: 3, Value: -80, Time: at(3)},
		{Account: "light", Task: 0, Value: -80, Time: at(4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err(), ErrRateLimited) || results[0].Code != CodeRateLimited {
		t.Errorf("exhausted account item = %+v, want rate_limited", results[0])
	}
	if results[1].Err() != nil {
		t.Errorf("other account's item rejected: %v", results[1].Err())
	}
}

// TestSubmitBatchGateWeight: batch admission costs one gate unit per item
// (acquired after decode), so a saturated gate sheds the whole envelope
// with 503 + overloaded.
func TestSubmitBatchGateWeight(t *testing.T) {
	store := NewLocalStore(testTasks(2))
	server := NewServerWithOptions(store, ServerOptions{
		Registry: obs.NewRegistry(),
		Limits:   ServerLimits{MaxConcurrent: 4, MaxQueue: 0, QueueTimeout: time.Millisecond},
	})
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, WithHTTPClient(srv.Client()))
	ctx := context.Background()

	// Occupy the whole gate, then the batch must be shed.
	if err := server.gate.acquire(ctx, 4, 0); err != nil {
		t.Fatal(err)
	}
	_, err := client.SubmitBatch(ctx, []SubmissionRequest{{Account: "a", Task: 0, Value: -80, Time: at(0)}})
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("batch through saturated gate: got %v, want ErrOverloaded", err)
	}
	server.gate.release(4)

	// With capacity back, a batch heavier than the whole gate is clamped
	// and still runs (alone) rather than being unadmittable forever.
	reports := make([]SubmissionRequest, 10)
	for i := range reports {
		reports[i] = SubmissionRequest{Account: fmt.Sprintf("a%d", i), Task: 0, Value: -80, Time: at(i)}
	}
	results, err := client.SubmitBatch(ctx, reports)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Err() != nil {
			t.Errorf("item %d rejected: %v", i, res.Err())
		}
	}
	if inUse, _ := server.gate.load(); inUse != 0 {
		t.Errorf("gate leaked %d units after batch", inUse)
	}
}

// TestAllowNAllOrNothing pins the limiter's batch semantics at the unit
// level: n tokens or none, cost clamped to the burst.
func TestAllowNAllOrNothing(t *testing.T) {
	l := newAccountLimiter(1, 4)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	if _, ok := l.allowN("a", 3); !ok {
		t.Fatal("3 of 4 tokens refused")
	}
	if wait, ok := l.allowN("a", 2); ok {
		t.Fatal("2 tokens granted with only 1 left")
	} else if wait <= 0 {
		t.Errorf("refusal advertised wait %v", wait)
	}
	// The refused call must not have consumed the remaining token.
	if _, ok := l.allowN("a", 1); !ok {
		t.Error("refused allowN consumed tokens (not all-or-nothing)")
	}
	// Cost above burst is clamped: a full bucket admits the oversized
	// batch and is emptied by it.
	if _, ok := l.allowN("b", 99); !ok {
		t.Error("oversized batch on a full bucket refused despite clamping")
	}
	if _, ok := l.allowN("b", 1); ok {
		t.Error("bucket not emptied by clamped oversized batch")
	}
}

// --- Durable batches & group commit ---

// batchedCampaign drives a fixed set of submissions through SubmitBatch
// in mixed chunk sizes (crossing WAL frame boundaries at every seam) and
// returns the flattened per-record op list in journal order.
func batchedCampaign() ([][]BatchSubmission, []scriptOp) {
	var batches [][]BatchSubmission
	var flat []scriptOp
	sizes := []int{1, 3, 5, 2, 7, 4, 2}
	n := 0
	for _, size := range sizes {
		batch := make([]BatchSubmission, size)
		for i := range batch {
			account := fmt.Sprintf("acct%02d", n%8)
			task := (n / 8) % 3
			batch[i] = BatchSubmission{Account: account, Task: task, Value: -80 - float64(n), At: at(n)}
			flat = append(flat, scriptOp{walRecord{Op: opSubmit, Account: account, Task: task, Value: -80 - float64(n), Time: at(n)}})
			n++
		}
		batches = append(batches, batch)
	}
	return batches, flat
}

// TestSubmitBatchDurableRoundTrip: batched writes recover identically to
// the same operations applied one by one.
func TestSubmitBatchDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, d, _, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batches, flat := batchedCampaign()
	for bi, batch := range batches {
		for i, e := range store.SubmitBatch(context.Background(), batch) {
			if e != nil {
				t.Fatalf("batch %d item %d: %v", bi, i, e)
			}
		}
	}
	want := signature(t, store)
	sigs := prefixSignatures(t, flat)
	if want != sigs[len(flat)] {
		t.Fatal("batched campaign state differs from the same ops applied singly")
	}
	if err := d.w.Close(); err != nil { // kill -9: recovery is WAL-only
		t.Fatal(err)
	}
	store2, d2, stats, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if stats.RecordsReplayed != len(flat) {
		t.Errorf("replayed %d records, want %d", stats.RecordsReplayed, len(flat))
	}
	if signature(t, store2) != want {
		t.Error("recovered state lost batched writes")
	}
}

// TestTortureCrashAtEveryOffsetBatched extends the crash-at-every-byte
// torture test across batch boundaries: the WAL is produced by
// SubmitBatch calls of mixed sizes, then every truncation point — heads,
// tails, and interiors of multi-frame batch writes — must recover to
// exactly a per-record prefix of the acknowledged operations.
func TestTortureCrashAtEveryOffsetBatched(t *testing.T) {
	dir := t.TempDir()
	store, d, _, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batches, flat := batchedCampaign()
	for bi, batch := range batches {
		for i, e := range store.SubmitBatch(context.Background(), batch) {
			if e != nil {
				t.Fatalf("batch %d item %d: %v", bi, i, e)
			}
		}
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.w.Close(); err != nil {
		t.Fatal(err)
	}
	sigs := prefixSignatures(t, flat)
	sigToPrefix := make(map[string]int, len(sigs))
	for r, sig := range sigs {
		sigToPrefix[sig] = r
	}

	stride := 1
	if testing.Short() {
		stride = 11
	}
	crashBase := t.TempDir()
	lastPrefix := 0
	tested := 0
	for k := 0; k <= len(walBytes); k += stride {
		if k+stride > len(walBytes) {
			k = len(walBytes)
		}
		crashDir := filepath.Join(crashBase, fmt.Sprintf("crash-%06d", k))
		if err := os.MkdirAll(crashDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, walFileName), walBytes[:k], 0o644); err != nil {
			t.Fatal(err)
		}
		store2, d2, stats, err := OpenDurable(crashDir, testTasks(3), DurableOptions{})
		if err != nil {
			t.Fatalf("offset %d: recovery refused to start: %v", k, err)
		}
		prefix, ok := sigToPrefix[signature(t, store2)]
		if !ok {
			t.Fatalf("offset %d: recovered state is not a per-record prefix of the batched ops", k)
		}
		if prefix != stats.RecordsReplayed {
			t.Fatalf("offset %d: replayed %d records but state matches prefix %d", k, stats.RecordsReplayed, prefix)
		}
		if prefix < lastPrefix {
			t.Fatalf("offset %d: prefix shrank %d -> %d", k, lastPrefix, prefix)
		}
		lastPrefix = prefix
		tested++
		_ = d2.w.Close()
		if k == len(walBytes) {
			if prefix != len(flat) {
				t.Fatalf("full WAL recovered only %d/%d records", prefix, len(flat))
			}
			break
		}
	}
	t.Logf("tested %d crash offsets over %d WAL bytes (stride %d), %d records", tested, len(walBytes), stride, len(flat))
}

// TestGroupCommitAmortizesFsyncs: with a linger configured, concurrent
// single submits share fsyncs — the fsync count must come out well below
// the record count, and a kill-style recovery still holds every ack.
func TestGroupCommitAmortizesFsyncs(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	store, d, _, err := OpenDurable(dir, testTasks(4), DurableOptions{
		CommitLinger:   20 * time.Millisecond,
		CommitMaxBatch: 1024, // never end the linger early: the test wants coalescing
		Registry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 16, 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			account := fmt.Sprintf("w%02d", w)
			for i := 0; i < perWorker; i++ {
				if err := store.Submit(context.Background(), account, i, -80-float64(w), at(i)); err != nil {
					errCh <- fmt.Errorf("worker %d submit %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	records := int64(workers * perWorker)
	if got := snap.Counters["wal.records"]; got != records {
		t.Fatalf("wal.records = %d, want %d", got, records)
	}
	fsyncs := snap.Histograms["wal.fsync_seconds"].Count
	if fsyncs == 0 {
		t.Fatal("no fsyncs recorded")
	}
	if fsyncs > records/2 {
		t.Errorf("group commit did not amortize: %d fsyncs for %d records", fsyncs, records)
	}
	if snap.Histograms["wal.group_commit_records"].Count == 0 {
		t.Error("wal.group_commit_records histogram empty")
	}
	if _, ok := snap.Gauges["wal.group_commit_waiters"]; !ok {
		t.Error("wal.group_commit_waiters gauge missing")
	}
	t.Logf("%d records acknowledged over %d fsyncs", records, fsyncs)

	want := signature(t, store)
	if err := d.w.Close(); err != nil { // kill: no final snapshot
		t.Fatal(err)
	}
	store2, d2, _, err := OpenDurable(dir, testTasks(4), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if signature(t, store2) != want {
		t.Error("group-committed acks lost on recovery")
	}
}

// TestGroupCommitFsyncFailure: a failed group fsync must refuse the ack
// (ErrDurability) while the in-memory state stays consistent with the
// log it was appended to; once the disk recovers, new acks flow again and
// recovery holds every acknowledged op.
func TestGroupCommitFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OS())
	store, _, _, err := OpenDurable(dir, testTasks(3), DurableOptions{
		FS:           ffs,
		CommitLinger: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Submit(context.Background(), "ana", 0, -80, at(0)); err != nil {
		t.Fatal(err)
	}
	ffs.FailSync(errors.New("injected fsync failure"))
	err = store.Submit(context.Background(), "ana", 1, -70, at(1))
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("unsynced group commit acknowledged: %v", err)
	}
	// The record is applied (it matches the log); the documented contract
	// is the same ambiguous-ack a torn network ack produces: a retry
	// reports the duplicate.
	if err := store.Submit(context.Background(), "ana", 1, -70, at(1)); !errors.Is(err, ErrDuplicateReport) && !errors.Is(err, ErrDurability) {
		t.Fatalf("retry after failed group fsync: %v", err)
	}
	ffs.FailSync(nil)
	if err := store.Submit(context.Background(), "bo", 0, -79, at(2)); err != nil {
		t.Fatalf("submit after disk recovery: %v", err)
	}

	store2, d2, _, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// Everything acknowledged (ana/0, bo/0) must be there; ana/1 wrote
	// its frame before the failed sync and may legally survive.
	ds, _ := store2.Dataset(context.Background())
	found := map[string]int{}
	for _, acct := range ds.Accounts {
		found[acct.ID] = len(acct.Observations)
	}
	if found["ana"] < 1 || found["bo"] != 1 {
		t.Errorf("acknowledged ops lost: %v", found)
	}
}

// TestGroupCommitBatchedSubmits: SubmitBatch under group commit — the
// whole batch rides one token and recovery holds it.
func TestGroupCommitBatchedSubmits(t *testing.T) {
	dir := t.TempDir()
	store, d, _, err := OpenDurable(dir, testTasks(3), DurableOptions{CommitLinger: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	batches, flat := batchedCampaign()
	for bi, batch := range batches {
		for i, e := range store.SubmitBatch(context.Background(), batch) {
			if e != nil {
				t.Fatalf("batch %d item %d: %v", bi, i, e)
			}
		}
	}
	want := signature(t, store)
	if err := d.Close(); err != nil { // graceful: exercises Close with waiters settled
		t.Fatal(err)
	}
	store2, d2, _, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if signature(t, store2) != want {
		t.Error("batched group-committed state lost")
	}
	if signature(t, store2) != prefixSignatures(t, flat)[len(flat)] {
		t.Error("recovered state differs from per-record reference")
	}
}

// TestGroupCommitSnapshotReleasesWaiters: a compaction triggered while
// records are pending must mark them durable (the snapshot holds them)
// and release their waiters — no stuck acks, no lost data.
func TestGroupCommitSnapshotReleasesWaiters(t *testing.T) {
	dir := t.TempDir()
	store, d, _, err := OpenDurable(dir, testTasks(3), DurableOptions{
		SnapshotEvery: 4,
		CommitLinger:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 12)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				done <- store.Submit(context.Background(), fmt.Sprintf("s%d", w), i, -80, at(i))
			}
		}(w)
	}
	wg.Wait()
	close(done)
	for err := range done {
		if err != nil {
			t.Fatalf("submit during compaction: %v", err)
		}
	}
	want := signature(t, store)
	if err := d.w.Close(); err != nil {
		t.Fatal(err)
	}
	store2, d2, _, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if signature(t, store2) != want {
		t.Error("state lost across snapshot-under-load")
	}
}
