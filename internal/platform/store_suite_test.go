package platform

import (
	"context"
	"errors"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// storeSuite is the behavioral contract test for the Store interface:
// every implementation the package ships must pass it unchanged. It runs
// against LocalStore directly and against RemoteStore fronting a real
// HTTP server, which is what guarantees the in-process and over-the-wire
// semantics never drift apart.
func storeSuite(t *testing.T, name string, newStore func(t *testing.T, numTasks int) Store) {
	ctx := context.Background()

	t.Run(name+"/tasks", func(t *testing.T) {
		s := newStore(t, 3)
		tasks, err := s.Tasks(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(tasks) != 3 {
			t.Fatalf("Tasks = %d, want 3", len(tasks))
		}
	})

	t.Run(name+"/submit and dataset", func(t *testing.T) {
		s := newStore(t, 2)
		if err := s.Submit(ctx, "alice", 0, -80, at(0)); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(ctx, "alice", 1, -70, at(1)); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(ctx, "bob", 0, -82, at(2)); err != nil {
			t.Fatal(err)
		}
		ds, err := s.Dataset(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ds.NumAccounts() != 2 || ds.NumTasks() != 2 {
			t.Fatalf("dataset = %d accounts / %d tasks", ds.NumAccounts(), ds.NumTasks())
		}
		if v, ok := ds.Value(0, 1); !ok || v != -70 {
			t.Errorf("alice task 1 = %v, %v", v, ok)
		}
	})

	t.Run(name+"/submit rejections", func(t *testing.T) {
		s := newStore(t, 2)
		if err := s.Submit(ctx, "", 0, 1, at(0)); !errors.Is(err, ErrEmptyAccount) {
			t.Errorf("empty account: %v", err)
		}
		if err := s.Submit(ctx, "a", 9, 1, at(0)); !errors.Is(err, ErrUnknownTask) {
			t.Errorf("unknown task: %v", err)
		}
		if err := s.Submit(ctx, "a", 0, math.NaN(), at(0)); !errors.Is(err, ErrMalformedRequest) {
			t.Errorf("NaN value: %v", err)
		}
		if err := s.Submit(ctx, "a", 0, math.Inf(1), at(0)); !errors.Is(err, ErrMalformedRequest) {
			t.Errorf("Inf value: %v", err)
		}
		if err := s.Submit(ctx, "a", 0, 1, at(0)); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(ctx, "a", 0, 2, at(1)); !errors.Is(err, ErrDuplicateReport) {
			t.Errorf("duplicate: %v", err)
		}
	})

	t.Run(name+"/submit batch positional", func(t *testing.T) {
		s := newStore(t, 2)
		if err := s.Submit(ctx, "seed", 0, 1, at(0)); err != nil {
			t.Fatal(err)
		}
		items := []BatchSubmission{
			{Account: "w1", Task: 0, Value: 1, At: at(1)},
			{Account: "seed", Task: 0, Value: 2, At: at(1)},        // duplicate
			{Account: "w2", Task: 9, Value: 3, At: at(1)},          // unknown task
			{Account: "", Task: 0, Value: 4, At: at(1)},            // empty account
			{Account: "w3", Task: 1, Value: math.NaN(), At: at(1)}, // non-finite
			{Account: "w4", Task: 1, Value: 5, At: at(1)},
		}
		errs := s.SubmitBatch(ctx, items)
		if len(errs) != len(items) {
			t.Fatalf("%d results for %d items", len(errs), len(items))
		}
		if errs[0] != nil || errs[5] != nil {
			t.Errorf("valid items rejected: %v / %v", errs[0], errs[5])
		}
		for i, want := range map[int]error{
			1: ErrDuplicateReport,
			2: ErrUnknownTask,
			3: ErrEmptyAccount,
			4: ErrMalformedRequest,
		} {
			if !errors.Is(errs[i], want) {
				t.Errorf("item %d = %v, want %v", i, errs[i], want)
			}
		}
		empty := s.SubmitBatch(ctx, nil)
		if len(empty) != 0 {
			t.Errorf("empty batch returned %d results", len(empty))
		}
	})

	t.Run(name+"/fingerprints", func(t *testing.T) {
		s := newStore(t, 1)
		if err := s.RecordFingerprintFeatures(ctx, "alice", []float64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		if err := s.RecordFingerprintFeatures(ctx, "", []float64{1}); !errors.Is(err, ErrEmptyAccount) {
			t.Errorf("empty account: %v", err)
		}
		ds, err := s.Dataset(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Accounts) != 1 || len(ds.Accounts[0].Fingerprint) != 3 {
			t.Errorf("fingerprint not in dataset: %+v", ds.Accounts)
		}
	})

	t.Run(name+"/aggregate", func(t *testing.T) {
		s := newStore(t, 1)
		for i, v := range []float64{10, 12, 11} {
			if err := s.Submit(ctx, string(rune('a'+i)), 0, v, at(i)); err != nil {
				t.Fatal(err)
			}
		}
		res, unc, err := s.Aggregate(ctx, "median")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Truths) != 1 || res.Truths[0] != 11 {
			t.Errorf("median = %v", res.Truths)
		}
		if len(unc) != len(res.Truths) {
			t.Errorf("uncertainty has %d entries for %d truths", len(unc), len(res.Truths))
		}
		if _, _, err := s.Aggregate(ctx, "nope"); !errors.Is(err, ErrUnknownAggregation) {
			t.Errorf("unknown method: %v", err)
		}
	})

	t.Run(name+"/stats", func(t *testing.T) {
		s := newStore(t, 2)
		if err := s.Submit(ctx, "alice", 0, 1, at(0)); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(ctx, "bob", 1, 2, at(1)); err != nil {
			t.Fatal(err)
		}
		stats, err := s.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Tasks != 2 || stats.Accounts != 2 {
			t.Errorf("stats = %+v, want 2 tasks / 2 accounts", stats)
		}
		if stats.Degraded {
			t.Errorf("healthy store reports degraded: %q", stats.DegradedReason)
		}
	})

	t.Run(name+"/submit listener sees acked only", func(t *testing.T) {
		s := newStore(t, 2)
		var mu sync.Mutex
		var seen []BatchSubmission
		s.SetSubmitListener(func(items []BatchSubmission) {
			mu.Lock()
			seen = append(seen, items...)
			mu.Unlock()
		})
		if err := s.Submit(ctx, "alice", 0, 7, at(0)); err != nil {
			t.Fatal(err)
		}
		if err := s.Submit(ctx, "alice", 0, 8, at(1)); !errors.Is(err, ErrDuplicateReport) {
			t.Fatal(err)
		}
		errs := s.SubmitBatch(ctx, []BatchSubmission{
			{Account: "bob", Task: 0, Value: 9, At: at(2)},
			{Account: "alice", Task: 0, Value: 10, At: at(2)}, // duplicate
		})
		if errs[0] != nil || errs[1] == nil {
			t.Fatalf("batch = %v", errs)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(seen) != 2 {
			t.Fatalf("listener saw %d submissions, want 2 acked: %+v", len(seen), seen)
		}
		if seen[0].Account != "alice" || seen[0].Value != 7 || seen[1].Account != "bob" || seen[1].Value != 9 {
			t.Errorf("listener saw %+v", seen)
		}
	})

	t.Run(name+"/canceled context", func(t *testing.T) {
		s := newStore(t, 1)
		canceled, cancel := context.WithCancel(context.Background())
		cancel()
		if err := s.Submit(canceled, "alice", 0, 1, at(0)); err == nil {
			t.Error("submit with canceled context succeeded")
		}
		if _, err := s.Dataset(canceled); err == nil {
			t.Error("dataset with canceled context succeeded")
		}
	})
}

func TestStoreSuiteLocal(t *testing.T) {
	storeSuite(t, "local", func(t *testing.T, numTasks int) Store {
		return NewLocalStore(testTasks(numTasks))
	})
}

func TestStoreSuiteRemote(t *testing.T) {
	storeSuite(t, "remote", func(t *testing.T, numTasks int) Store {
		api := NewServer(NewLocalStore(testTasks(numTasks)), nil)
		srv := httptest.NewServer(api)
		t.Cleanup(srv.Close)
		t.Cleanup(api.Close)
		return NewRemoteStore(NewClient(srv.URL, WithHTTPClient(srv.Client()), WithRetries(0)))
	})
}

// TestRemoteStoreSatisfiesPinger pins the capability split: RemoteStore
// reports its backing node's health, LocalStore (in-process, always
// reachable) deliberately does not.
func TestRemoteStoreSatisfiesPinger(t *testing.T) {
	var s Store = NewRemoteStore(NewClient("http://127.0.0.1:1"))
	if _, ok := s.(Pinger); !ok {
		t.Error("RemoteStore lost the Pinger capability")
	}
	var l Store = NewLocalStore(testTasks(1))
	if _, ok := l.(Pinger); ok {
		t.Error("LocalStore grew a Pinger capability; update the readyz aggregation docs")
	}
}

// TestRemoteStoreHonorsDeadline pins that a RemoteStore call carries its
// context into the HTTP request.
func TestRemoteStoreHonorsDeadline(t *testing.T) {
	api := NewServer(NewLocalStore(testTasks(1)), nil)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	t.Cleanup(api.Close)
	s := NewRemoteStore(NewClient(srv.URL, WithHTTPClient(srv.Client()), WithRetries(0)))
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if err := s.Submit(expired, "alice", 0, 1, at(0)); err == nil {
		t.Error("submit with expired deadline succeeded")
	}
}
