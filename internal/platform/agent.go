package platform

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"sybiltd/internal/attack"
	"sybiltd/internal/mems"
	"sybiltd/internal/mobility"
	"sybiltd/internal/radio"
)

// AgentConfig parameterizes a simulated crowd driving a platform over
// HTTP (used by cmd/mcsagent and the integration tests).
type AgentConfig struct {
	// NumLegit honest users; zero means 8.
	NumLegit int
	// SybilAccounts per attacker; zero disables the attackers.
	SybilAccounts int
	// Activeness per account in (0, 1]; zero means 0.5.
	Activeness float64
	// Target is the fabricated value; zero means -50.
	Target float64
	// Seed drives all randomness; campaigns are reproducible.
	Seed int64
	// Start anchors timestamps; zero means time.Now().UTC().
	Start time.Time
	// Methods to aggregate with at the end; nil means
	// crh, td-fp, td-ts, td-tr.
	Methods []string
	// AccountPrefix prefixes every account name, letting several agents
	// share one platform without ID collisions.
	AccountPrefix string
	// BatchSize, when above 1, sends each account's reports through
	// SubmitBatch in chunks of up to this many instead of one request per
	// report. 0 or 1 keeps the per-report path.
	BatchSize int
}

func (c AgentConfig) withDefaults() AgentConfig {
	if c.NumLegit == 0 {
		c.NumLegit = 8
	}
	if c.Activeness == 0 {
		c.Activeness = 0.5
	}
	if c.Target == 0 {
		c.Target = -50
	}
	if c.Start.IsZero() {
		c.Start = time.Now().UTC()
	}
	if c.Methods == nil {
		c.Methods = []string{"crh", "td-fp", "td-ts", "td-tr"}
	}
	return c
}

// MethodOutcome is one aggregation method's result in an AgentReport.
type MethodOutcome struct {
	Method    string
	MAE       float64
	Converged bool
}

// AgentReport summarizes a driven campaign.
type AgentReport struct {
	Accounts int
	Tasks    int
	Outcomes []MethodOutcome
}

// DriveCampaign plays a full campaign against the platform behind client:
// honest walkers submit noisy measurements with sign-in fingerprints, one
// Attack-I and one Attack-II attacker (when enabled) fabricate, and the
// report compares the configured aggregation methods against the agent's
// own radio ground truth.
func DriveCampaign(ctx context.Context, client *Client, cfg AgentConfig) (AgentReport, error) {
	cfg = cfg.withDefaults()
	if cfg.NumLegit < 1 {
		return AgentReport{}, errors.New("platform: agent needs at least one honest user")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	taskDTOs, err := client.Tasks(ctx)
	if err != nil {
		return AgentReport{}, fmt.Errorf("platform: agent fetch tasks: %w", err)
	}
	if len(taskDTOs) < 2 {
		return AgentReport{}, fmt.Errorf("platform: %d tasks published; need at least 2", len(taskDTOs))
	}
	pois := make([]mobility.Point, len(taskDTOs))
	for i, t := range taskDTOs {
		pois[i] = mobility.Point{X: t.X, Y: t.Y}
	}
	env, err := radio.NewEnvironment(radio.Config{}, rng)
	if err != nil {
		return AgentReport{}, fmt.Errorf("platform: agent radio: %w", err)
	}

	devices := mems.BuildInventory(mems.PaperInventory(), rng)
	cursor := 0
	nextDevice := func() *mems.Device {
		d := devices[cursor%len(devices)]
		cursor++
		return d
	}

	signIn := func(account string, dev *mems.Device) error {
		return client.RecordFingerprint(ctx, account, dev.Capture(mems.DefaultCaptureSpec(), rng))
	}
	makeTrace := func(act float64) (mobility.Trace, error) {
		subset := mobility.ChooseSubset(len(pois), act, 2, rng)
		origin := mobility.Point{X: rng.Float64() * 400, Y: rng.Float64() * 300}
		route := mobility.NearestNeighborRoute(pois, subset, origin)
		return mobility.Walk(pois, route, mobility.WalkSpec{
			Start:     cfg.Start.Add(time.Duration(rng.Float64() * float64(90*time.Minute))),
			SpeedMPS:  1.3 + rng.NormFloat64()*0.15,
			Origin:    origin,
			HasOrigin: true,
		}, rng)
	}
	submitTrace := func(account string, trace mobility.Trace, lag time.Duration, value func(task int) float64) error {
		if cfg.BatchSize > 1 {
			for start := 0; start < len(trace.Visits); start += cfg.BatchSize {
				end := start + cfg.BatchSize
				if end > len(trace.Visits) {
					end = len(trace.Visits)
				}
				reports := make([]SubmissionRequest, 0, end-start)
				for _, v := range trace.Visits[start:end] {
					reports = append(reports, SubmissionRequest{
						Account: account, Task: v.POI, Value: value(v.POI), Time: v.Arrive.Add(lag),
					})
				}
				results, err := client.SubmitBatch(ctx, reports)
				if err != nil {
					return err
				}
				for i, res := range results {
					if err := res.Err(); err != nil {
						return fmt.Errorf("batch item %s/%d: %w", reports[i].Account, reports[i].Task, err)
					}
				}
			}
			return nil
		}
		for _, v := range trace.Visits {
			err := client.Submit(ctx, SubmissionRequest{
				Account: account, Task: v.POI, Value: value(v.POI), Time: v.Arrive.Add(lag),
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Honest users.
	for u := 0; u < cfg.NumLegit; u++ {
		account := fmt.Sprintf("%suser%02d", cfg.AccountPrefix, u+1)
		if err := signIn(account, nextDevice()); err != nil {
			return AgentReport{}, fmt.Errorf("platform: %s sign-in: %w", account, err)
		}
		trace, err := makeTrace(cfg.Activeness)
		if err != nil {
			return AgentReport{}, fmt.Errorf("platform: %s trace: %w", account, err)
		}
		noise := 0.5 + rng.Float64()*2
		err = submitTrace(account, trace, 0, func(task int) float64 {
			return env.Observe(pois[task].X, pois[task].Y, noise, rng)
		})
		if err != nil {
			return AgentReport{}, fmt.Errorf("platform: %s submit: %w", account, err)
		}
	}

	// Sybil attackers: one Attack-I, one Attack-II, as in the paper.
	if cfg.SybilAccounts > 0 {
		profiles := []attack.Profile{
			{Kind: attack.AttackI, NumAccounts: cfg.SybilAccounts, Activeness: cfg.Activeness, Strategy: attack.Fabricate{Target: cfg.Target}},
			{Kind: attack.AttackII, NumAccounts: cfg.SybilAccounts, NumDevices: 2, Activeness: cfg.Activeness, Strategy: attack.Fabricate{Target: cfg.Target}},
		}
		for aIdx, prof := range profiles {
			prof = prof.Normalize()
			attDevices := make([]*mems.Device, prof.NumDevices)
			for d := range attDevices {
				attDevices[d] = nextDevice()
			}
			trace, err := makeTrace(prof.Activeness)
			if err != nil {
				return AgentReport{}, fmt.Errorf("platform: attacker %d trace: %w", aIdx+1, err)
			}
			for s := 0; s < prof.NumAccounts; s++ {
				account := fmt.Sprintf("%ssybil%02d-%d", cfg.AccountPrefix, aIdx+1, s+1)
				if err := signIn(account, attDevices[s%len(attDevices)]); err != nil {
					return AgentReport{}, fmt.Errorf("platform: %s sign-in: %w", account, err)
				}
				strategy := prof.Strategy
				idx := s
				lag := time.Duration(s) * 45 * time.Second
				err := submitTrace(account, trace, lag, func(task int) float64 {
					truthVal := env.TruthAt(pois[task].X, pois[task].Y)
					return strategy.Fabricate(truthVal, truthVal, idx, rng)
				})
				if err != nil {
					return AgentReport{}, fmt.Errorf("platform: %s submit: %w", account, err)
				}
			}
		}
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		return AgentReport{}, fmt.Errorf("platform: agent stats: %w", err)
	}
	report := AgentReport{Accounts: stats.Accounts, Tasks: stats.Tasks}

	for _, method := range cfg.Methods {
		resp, err := client.Aggregate(ctx, method)
		if err != nil {
			return AgentReport{}, fmt.Errorf("platform: agent aggregate %s: %w", method, err)
		}
		var sum float64
		var n int
		for _, tr := range resp.Truths {
			if !tr.Estimated {
				continue
			}
			gt := env.TruthAt(pois[tr.Task].X, pois[tr.Task].Y)
			sum += math.Abs(tr.Value - gt)
			n++
		}
		mae := math.NaN()
		if n > 0 {
			mae = sum / float64(n)
		}
		report.Outcomes = append(report.Outcomes, MethodOutcome{
			Method:    method,
			MAE:       mae,
			Converged: resp.Meta.Converged,
		})
	}
	return report, nil
}
