package platform

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WatchOptions tunes Client.Watch.
type WatchOptions struct {
	// FromSeq resumes the stream after a known sequence number (sent as
	// the SSE Last-Event-ID). Zero starts with a full snapshot of the
	// current estimates.
	FromSeq uint64
	// Reconnect keeps the watch alive across connection failures: the
	// watcher redials with exponential backoff (the client's retry delays)
	// and resumes from the last sequence number it saw, so a blip costs at
	// most a re-delivery of the tasks that changed meanwhile — latest-wins
	// semantics make that idempotent. Without Reconnect the stream ends on
	// the first error.
	Reconnect bool
	// Buffer is the capacity of the Updates channel; zero means 64. When
	// the consumer falls behind, the watcher blocks reading the socket —
	// client-side backpressure — and the server coalesces on its side.
	Buffer int
}

// Watcher is a live subscription to the platform's truth stream. Read
// Updates until it closes, then check Err.
type Watcher struct {
	updates chan TruthUpdate

	mu      sync.Mutex
	err     error
	lastSeq uint64
}

// Updates delivers on-change truth estimates in arrival order. The
// channel closes when the watch ends (context cancelled, terminal error,
// or server gone with Reconnect disabled).
func (w *Watcher) Updates() <-chan TruthUpdate { return w.updates }

// Err reports why the watch ended; nil after a clean context cancel.
// Valid once Updates is closed.
func (w *Watcher) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// LastSeq returns the last sequence number received, usable as FromSeq
// for a later manual resume.
func (w *Watcher) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// Watch opens a server-push subscription to GET /v1/truths:watch. The
// first connection is made synchronously — a refused or shed subscribe
// surfaces as the returned error (errors.Is(err, ErrOverloaded) when the
// server's subscriber cap is hit) — and subsequent delivery runs on a
// background goroutine until ctx ends or the stream fails terminally.
func (c *Client) Watch(ctx context.Context, opts WatchOptions) (*Watcher, error) {
	if opts.Buffer <= 0 {
		opts.Buffer = 64
	}
	resp, err := c.watchConnect(ctx, opts.FromSeq)
	if err != nil {
		return nil, err
	}
	w := &Watcher{updates: make(chan TruthUpdate, opts.Buffer), lastSeq: opts.FromSeq}
	go w.run(ctx, c, resp, opts)
	return w, nil
}

// watchConnect dials one watch stream, resuming after fromSeq.
func (c *Client) watchConnect(ctx context.Context, fromSeq uint64) (*http.Response, error) {
	base := c.currentBase()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/truths:watch", nil)
	if err != nil {
		return nil, fmt.Errorf("platform client: watch request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if fromSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(fromSeq, 10))
	}
	resp, err := c.streamHTTPClient().Do(req)
	if err != nil {
		c.rotateBase(base)
		return nil, fmt.Errorf("platform client: GET /v1/truths:watch: %w", err)
	}
	if resp.StatusCode >= 400 {
		defer drainBody(resp.Body)
		err := decodeAPIError(resp)
		// A server that doesn't serve the watch route at all (older
		// version, or a stripped-down node behind a proxy) answers 404/501
		// with no decodable wire code. Brand those ErrUnimplemented so the
		// caller gets a typed "this endpoint isn't here" instead of a bare
		// status, and Reconnect knows not to redial an answer that will
		// never change.
		var ae *APIError
		if errors.As(err, &ae) && ae.Code == "" &&
			(ae.Status == http.StatusNotFound || ae.Status == http.StatusNotImplemented) {
			ae.Code = CodeUnimplemented
		}
		return nil, fmt.Errorf("platform client: GET /v1/truths:watch: %w", err)
	}
	return resp, nil
}

// streamHTTPClient returns an HTTP client suitable for a long-lived
// stream: the configured client's transport without its overall request
// timeout, which would otherwise kill every subscription at the timeout
// mark (the default client carries 10s).
func (c *Client) streamHTTPClient() *http.Client {
	base := c.cfg.HTTPClient
	if base.Timeout == 0 {
		return base
	}
	return &http.Client{
		Transport:     base.Transport,
		CheckRedirect: base.CheckRedirect,
		Jar:           base.Jar,
	}
}

// run consumes stream connections until the watch ends.
func (w *Watcher) run(ctx context.Context, c *Client, resp *http.Response, opts WatchOptions) {
	defer close(w.updates)
	attempt := 0
	for {
		err := w.consume(ctx, resp.Body)
		_ = resp.Body.Close()
		if ctx.Err() != nil {
			return // clean end: the caller cancelled
		}
		if !opts.Reconnect {
			w.setErr(err)
			return
		}
		// Redial with backoff, resuming after the last seq we saw. The
		// attempt counter resets on any successful connection, so a
		// healthy stream that blips reconnects fast.
		for {
			if err := c.sleep(ctx, attempt, 0); err != nil {
				return
			}
			if attempt < 30 { // cap the shift, not the retrying
				attempt++
			}
			next, err := c.watchConnect(ctx, w.LastSeq())
			if err == nil {
				resp = next
				attempt = 0
				break
			}
			if errors.Is(err, ErrUnimplemented) {
				// The endpoint is deliberately absent here; redialing
				// cannot change the answer. End the watch with the typed
				// error instead of retrying forever.
				w.setErr(err)
				return
			}
			if ctx.Err() != nil {
				return
			}
		}
	}
}

func (w *Watcher) setErr(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// consume parses SSE events off one connection body until it errors or
// the context ends, forwarding truth updates to the Updates channel.
func (w *Watcher) consume(ctx context.Context, body io.Reader) error {
	// Close/ctx handling: the HTTP request carries ctx, so the transport
	// closes the body when ctx ends and the blocked Read returns.
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var data strings.Builder
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() > 0 && (event == "" || event == "truth") {
				var u TruthUpdate
				if err := json.Unmarshal([]byte(data.String()), &u); err == nil {
					w.mu.Lock()
					if u.Seq > w.lastSeq {
						w.lastSeq = u.Seq
					}
					w.mu.Unlock()
					select {
					case w.updates <- u:
					case <-ctx.Done():
						return ctx.Err()
					}
				}
			}
			data.Reset()
			event = ""
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case strings.HasPrefix(line, "id:"):
			// The sequence number also rides inside the JSON payload, and
			// lastSeq must only advance once the event is delivered to the
			// consumer — advancing it here would let a crash between this
			// line and delivery skip the event on resume.
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("platform client: watch stream: %w", err)
	}
	return io.EOF // orderly server close
}

// Next waits for the next update, giving up after d. ok is false on
// timeout or when the stream has ended.
func (w *Watcher) Next(d time.Duration) (TruthUpdate, bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case u, ok := <-w.updates:
		return u, ok
	case <-t.C:
		return TruthUpdate{}, false
	}
}
