// Per-shard replication: a replica group is one primary plus N followers
// sharing a history of WAL frames. The primary journals every mutation
// through the Durability layer and ships the committed (durable) frames
// to each follower over POST /v1/repl/frames — sequence-numbered,
// CRC-carrying, idempotent on replay. Followers journal shipped frames
// verbatim (their WAL is byte-identical to the primary's over the shipped
// range) and apply them through the same replay path recovery uses, so a
// promoted follower is indistinguishable from a restarted primary.
//
// Divergence is scoped by an epoch, persisted in the snapshot envelope:
//
//   - A follower accepts frames only at its own epoch. Equal epochs imply
//     the shipped frames extend the follower's prefix (there is exactly
//     one writer per epoch), so a contiguity + CRC check is sufficient.
//   - An epoch is only ever adopted via a full snapshot ship. A primary
//     whose follower answers from a lower epoch resets it with snapshot +
//     tail instead of frames; a demoted primary keeps its old epoch, so a
//     tail it wrote after the group moved on can never be mistaken for a
//     prefix — its first contact with the new primary forces the reset.
//   - Promotion bumps the epoch (the router picks max(known)+1), and the
//     new epoch is persisted before the first write is accepted.
//
// Ack modes: async (default) acknowledges once locally durable and ships
// in the background; semi-sync withholds the ack until at least one
// follower has the record durable, so an acknowledged write survives the
// loss of any single replica.
package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"sync"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
)

// Replica roles.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// AckMode selects when a replicated primary acknowledges a write.
type AckMode string

const (
	// AckAsync acknowledges once the record is durable on the primary;
	// followers catch up in the background. A primary lost before shipping
	// can lose acknowledged records — the classic async-replication gap.
	AckAsync AckMode = "async"
	// AckSemiSync withholds the ack until at least one follower reports
	// the record durable, so every acknowledged write exists on ≥2
	// replicas. Slower per write; survives any single-node loss.
	AckSemiSync AckMode = "semisync"
)

// ReplFrame is one WAL frame on the wire: the exact payload bytes the
// primary journaled, with its sequence number and CRC32-IEEE checksum
// (the same checksum the WAL file format carries).
type ReplFrame struct {
	Seq     uint64 `json:"seq"`
	CRC     uint32 `json:"crc"`
	Payload []byte `json:"payload"`
}

// ReplShipRequest carries frames (or a full snapshot) from primary to
// follower. Exactly one of Frames / Snapshot is meaningful per request;
// an empty request is a cursor probe. PrimarySeq is the primary's durable
// high-water mark, letting the follower measure its own lag.
type ReplShipRequest struct {
	Epoch       uint64      `json:"epoch"`
	PrimarySeq  uint64      `json:"primary_seq"`
	Frames      []ReplFrame `json:"frames,omitempty"`
	Snapshot    []byte      `json:"snapshot,omitempty"` // mcs JSON dataset
	SnapshotSeq uint64      `json:"snapshot_seq,omitempty"`
	// Fence and FenceVersion accompany a snapshot: the primary's resharding
	// fence state (see Fencer), which rides outside the dataset the same
	// way it rides outside the WAL in the snapshot envelope. A follower
	// adopting a snapshot adopts the fence with it — otherwise a snapshot
	// reset would silently unfence a replica and it could accept writes for
	// accounts the ring moved away.
	Fence        map[string]uint64 `json:"fence,omitempty"`
	FenceVersion uint64            `json:"fence_version,omitempty"`
}

// ReplShipResponse reports the follower's cursor after a ship. AppliedSeq
// is the follower's durable high-water mark — the primary resumes from it
// on gap or after reconnect, which is what makes replay idempotent.
// NeedSnapshot asks the primary to ship a full snapshot instead of frames
// (the follower's epoch is behind, or its cursor precedes the primary's
// compacted WAL).
type ReplShipResponse struct {
	AppliedSeq   uint64 `json:"applied_seq"`
	Epoch        uint64 `json:"epoch"`
	Durable      bool   `json:"durable"`
	NeedSnapshot bool   `json:"need_snapshot,omitempty"`
}

// ReplFollowerStatus is one follower's shipping state as the primary
// sees it.
type ReplFollowerStatus struct {
	Endpoint string `json:"endpoint"`
	AckedSeq uint64 `json:"acked_seq"`
	Lag      uint64 `json:"lag"`
}

// ReplStatusResponse is the GET /v1/repl/status body: the node's role,
// epoch, and durable sequence number, plus (follower) its lag behind the
// last-seen primary high-water mark or (primary) per-follower cursors.
type ReplStatusResponse struct {
	Role       string               `json:"role"`
	Epoch      uint64               `json:"epoch"`
	DurableSeq uint64               `json:"durable_seq"`
	Lag        uint64               `json:"lag"`
	AckMode    AckMode              `json:"ack_mode"`
	Followers  []ReplFollowerStatus `json:"followers,omitempty"`
}

// ReplRoleRequest flips a node's role (POST /v1/repl/role). Promotion
// (Role == primary) must carry an epoch strictly above the node's own and
// the follower endpoints the new primary ships to. Demotion (Role ==
// follower) carries the epoch of the authority demoting the node — it is
// refused when stale — but the node keeps its own epoch, forcing a
// snapshot handshake with the new primary (see the package comment).
type ReplRoleRequest struct {
	Role      string   `json:"role"`
	Epoch     uint64   `json:"epoch"`
	Primary   string   `json:"primary,omitempty"`
	Followers []string `json:"followers,omitempty"`
}

// ReplicationOptions configures NewReplication.
type ReplicationOptions struct {
	// Mode is the ack mode (default AckAsync).
	Mode AckMode
	// Followers are the follower base URLs this node ships to while
	// primary.
	Followers []string
	// FollowerOf, when non-empty, starts the node as a follower of the
	// given primary endpoint (informational; the primary pushes).
	FollowerOf string
	// MaxShipBatch bounds frames per ship request (default 512).
	MaxShipBatch int
	// ShipInterval is the background ship/retry cadence (default 100ms);
	// durable writes also poke the shippers immediately.
	ShipInterval time.Duration
	// SemiSyncTimeout bounds how long a semi-sync write waits for a
	// follower ack before failing with ErrReplicaLag (default 5s). The
	// record is locally durable either way; the error tells the client
	// the redundancy guarantee was not met in time (a retry may then see
	// ErrDuplicateReport — the usual ambiguous-ack contract).
	SemiSyncTimeout time.Duration
	// MaxReadLag, when > 0, makes a follower refuse reads with
	// ErrReplicaLag while it trails the primary's high-water mark by more
	// than this many records. 0 serves reads at any staleness.
	MaxReadLag uint64
	// NewClient builds the client used to reach a follower (default
	// NewClient(endpoint, WithRetries(0))). Tests inject fault-wrapped
	// clients here.
	NewClient func(endpoint string) *Client
	// Registry receives replication metrics (default obs.Default()).
	Registry *obs.Registry
	// Logger, when non-nil, receives replication lifecycle logs.
	Logger *log.Logger
}

// shipper drives one follower: a goroutine owning the connection, a
// cursor (the follower's durable seq), and a poke channel the durability
// layer rings on every local commit.
type shipper struct {
	idx      int
	endpoint string
	client   *Client
	poke     chan struct{}
	stop     chan struct{}
	done     chan struct{}

	// mu guards the cursor state (read by Status / semi-sync bookkeeping
	// while the shipper goroutine writes it).
	mu           sync.Mutex
	cursor       uint64
	handshook    bool
	needSnapshot bool
}

func (s *shipper) acked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// Replication manages one node's side of a replica group. A node is
// either the group's primary (accepts writes, ships frames) or a
// follower (accepts shipped frames, rejects client writes with
// ErrNotPrimary, serves reads).
//
// Lock ordering: mu (role/view state) and shipMu (shipper set + ack
// bookkeeping) are leaves — neither is ever held while taking the store
// mutex. The durability layer calls pokeShippers with the store mutex
// held, so shipMu must stay cheap and never block on the store.
type Replication struct {
	store *LocalStore
	d     *Durability
	reg   *obs.Registry
	log   *log.Logger

	mode            AckMode
	maxBatch        int
	shipInterval    time.Duration
	semiSyncTimeout time.Duration
	maxReadLag      uint64
	newClient       func(string) *Client

	mu             sync.RWMutex
	role           string
	primary        string // last-known primary endpoint (follower view)
	lastPrimarySeq uint64 // primary high-water mark from the last ship
	closed         bool

	shipMu   sync.Mutex
	shippers []*shipper
	ackSeq   uint64        // highest seq durable on ≥1 follower
	ackCh    chan struct{} // closed and replaced when ackSeq advances
}

// NewReplication attaches a replication manager to a durable store. It
// must run before the store is shared (it wires itself into the store and
// durability layer without locks). Close releases the shippers.
func NewReplication(store *LocalStore, d *Durability, opts ReplicationOptions) *Replication {
	if store == nil || d == nil {
		panic("platform: NewReplication needs a durable store")
	}
	r := &Replication{
		store:           store,
		d:               d,
		reg:             opts.Registry,
		log:             opts.Logger,
		mode:            opts.Mode,
		maxBatch:        opts.MaxShipBatch,
		shipInterval:    opts.ShipInterval,
		semiSyncTimeout: opts.SemiSyncTimeout,
		maxReadLag:      opts.MaxReadLag,
		newClient:       opts.NewClient,
		role:            RolePrimary,
		primary:         opts.FollowerOf,
		ackCh:           make(chan struct{}),
	}
	if r.reg == nil {
		r.reg = obs.Default()
	}
	if r.mode == "" {
		r.mode = AckAsync
	}
	if r.maxBatch <= 0 {
		r.maxBatch = 512
	}
	if r.shipInterval <= 0 {
		r.shipInterval = 100 * time.Millisecond
	}
	if r.semiSyncTimeout <= 0 {
		r.semiSyncTimeout = 5 * time.Second
	}
	if r.newClient == nil {
		r.newClient = func(endpoint string) *Client {
			return NewClient(endpoint, WithRetries(0))
		}
	}
	if opts.FollowerOf != "" {
		r.role = RoleFollower
	}
	store.repl = r
	d.repl = r
	if r.role == RolePrimary {
		r.startShippersLocked(opts.Followers)
	}
	return r
}

// Close stops the shippers and fails any pending semi-sync waits.
func (r *Replication) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.stopShippers()
	r.shipMu.Lock()
	close(r.ackCh) // wake semi-sync waiters; they re-check closed
	r.ackCh = make(chan struct{})
	r.shipMu.Unlock()
}

// Role returns the node's current role.
func (r *Replication) Role() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.role
}

// Mode returns the configured ack mode.
func (r *Replication) Mode() AckMode { return r.mode }

// allowWrite gates client mutations: only the primary takes writes.
func (r *Replication) allowWrite() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.role != RolePrimary {
		return fmt.Errorf("%w: node is a follower of %s", ErrNotPrimary, r.primary)
	}
	return nil
}

// allowRead gates reads on a follower by staleness: with MaxReadLag set,
// a follower refuses to answer from state more than MaxReadLag records
// behind the primary's last-advertised high-water mark.
func (r *Replication) allowRead() error {
	if r.maxReadLag == 0 {
		return nil
	}
	r.mu.RLock()
	role, hwm := r.role, r.lastPrimarySeq
	r.mu.RUnlock()
	if role == RolePrimary {
		return nil
	}
	durable := r.d.durableSeq()
	if hwm > durable && hwm-durable > r.maxReadLag {
		return fmt.Errorf("%w: %d records behind", ErrReplicaLag, hwm-durable)
	}
	return nil
}

// settle completes a write's replication obligations after local
// durability: in semi-sync mode it blocks until a follower acks the
// token's sequence number (or the timeout passes → ErrReplicaLag).
func (r *Replication) settle(ctx context.Context, tok commitToken) error {
	if r.mode != AckSemiSync || tok.seq == 0 {
		return nil
	}
	timer := time.NewTimer(r.semiSyncTimeout)
	defer timer.Stop()
	for {
		// Lineage guard: settle is only reached by client writes this node
		// accepted as primary. If the node was demoted — or adopted a
		// different epoch — while the ack was pending, the record may be
		// rolled back by the snapshot reset that follows demotion, and the
		// ack counter now tracks a DIFFERENT history whose sequence numbers
		// will sail past tok.seq without ever containing this record.
		// Acking would report durability for a write that no longer exists
		// anywhere; refuse instead. The refusal is ambiguous by design (the
		// write may have survived), and the caller's retry against the real
		// primary is absorbed by the duplicate guard if it did.
		if r.Role() != RolePrimary || r.d.Epoch() != tok.epoch {
			return fmt.Errorf("%w: demoted while awaiting follower ack of seq %d", ErrNotPrimary, tok.seq)
		}
		r.shipMu.Lock()
		acked := r.ackSeq
		ch := r.ackCh
		noFollowers := len(r.shippers) == 0
		r.shipMu.Unlock()
		if acked >= tok.seq {
			return nil
		}
		r.mu.RLock()
		closed := r.closed
		r.mu.RUnlock()
		if closed || noFollowers {
			return fmt.Errorf("%w: no follower ack for seq %d", ErrReplicaLag, tok.seq)
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return fmt.Errorf("%w: waiting for follower ack of seq %d: %v", ErrReplicaLag, tok.seq, ctx.Err())
		case <-timer.C:
			r.reg.Counter("repl.semisync_timeouts").Inc()
			return fmt.Errorf("%w: no follower ack for seq %d within %v", ErrReplicaLag, tok.seq, r.semiSyncTimeout)
		}
	}
}

// pokeShippers nudges every shipper to flush. Called by the durability
// layer on durable progress, possibly with the store mutex held — it must
// never block.
func (r *Replication) pokeShippers() {
	r.shipMu.Lock()
	for _, s := range r.shippers {
		select {
		case s.poke <- struct{}{}:
		default:
		}
	}
	r.shipMu.Unlock()
}

// wakeSettles broadcasts to every blocked semi-sync settle without
// advancing the ack cursor: each waiter re-runs its lineage guard and
// fails fast instead of sleeping out the semi-sync timeout against a
// history that can no longer ack it. Called on any role or epoch change.
func (r *Replication) wakeSettles() {
	r.shipMu.Lock()
	close(r.ackCh)
	r.ackCh = make(chan struct{})
	r.shipMu.Unlock()
}

// noteAck records a follower's durable cursor for semi-sync gating.
func (r *Replication) noteAck(seq uint64) {
	r.shipMu.Lock()
	if seq > r.ackSeq {
		r.ackSeq = seq
		close(r.ackCh)
		r.ackCh = make(chan struct{})
	}
	r.shipMu.Unlock()
}

// startShippersLocked replaces the shipper set. Caller holds no locks or
// only r.mu (the shipper goroutines take neither).
func (r *Replication) startShippersLocked(endpoints []string) {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()
	for i, ep := range endpoints {
		s := &shipper{
			idx:      i,
			endpoint: ep,
			client:   r.newClient(ep),
			poke:     make(chan struct{}, 1),
			stop:     make(chan struct{}),
			done:     make(chan struct{}),
		}
		r.shippers = append(r.shippers, s)
		go r.runShipper(s)
	}
}

// stopShippers stops and drains the current shipper set.
func (r *Replication) stopShippers() {
	r.shipMu.Lock()
	stopped := r.shippers
	r.shippers = nil
	r.shipMu.Unlock()
	for _, s := range stopped {
		close(s.stop)
	}
	for _, s := range stopped {
		<-s.done
	}
}

// runShipper is the per-follower ship loop: wake on poke (a local commit)
// or the retry ticker, then drain everything the follower is missing.
func (r *Replication) runShipper(s *shipper) {
	defer close(s.done)
	ticker := time.NewTicker(r.shipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.poke:
		case <-ticker.C:
		}
		if r.Role() != RolePrimary {
			return // demoted: the next promotion starts fresh shippers
		}
		r.shipPending(s)
	}
}

// shipPending pushes frames (or a snapshot) until the follower is caught
// up or an error defers to the next tick.
func (r *Replication) shipPending(s *shipper) {
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		durable := r.d.durableSeq()
		epoch := r.d.Epoch()
		s.mu.Lock()
		cursor, handshook, needSnap := s.cursor, s.handshook, s.needSnapshot
		s.mu.Unlock()

		req := ReplShipRequest{Epoch: epoch, PrimarySeq: durable}
		switch {
		case needSnap:
			snap, err := r.snapshotForShip()
			if err != nil {
				r.logf("repl: snapshot for %s: %v", s.endpoint, err)
				r.reg.Counter("repl.ship_errors").Inc()
				return
			}
			req.Snapshot, req.SnapshotSeq, req.Epoch = snap.data, snap.seq, snap.epoch
			req.Fence, req.FenceVersion = snap.fence, snap.fenceVersion
			req.PrimarySeq = snap.seq
		case cursor < durable:
			frames, snapNeeded, err := r.d.framesSince(cursor, r.maxBatch)
			if err != nil {
				r.logf("repl: frames for %s: %v", s.endpoint, err)
				r.reg.Counter("repl.ship_errors").Inc()
				return
			}
			if snapNeeded {
				s.mu.Lock()
				s.needSnapshot = true
				s.mu.Unlock()
				continue
			}
			req.Frames = frames
		case !handshook:
			// Empty probe: learn the follower's cursor (and epoch view).
		default:
			r.setLag(s, durable)
			return // caught up
		}

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		resp, err := s.client.ReplShip(ctx, req)
		cancel()
		if err != nil {
			r.reg.Counter("repl.ship_errors").Inc()
			if isNotPrimaryErr(err) {
				// The follower answers to a newer epoch: this node lost a
				// failover race. Step down rather than fight.
				r.logf("repl: follower %s rejects epoch %d: stepping down", s.endpoint, epoch)
				r.stepDown()
			}
			return
		}
		s.mu.Lock()
		s.handshook = true
		s.needSnapshot = resp.NeedSnapshot
		if resp.AppliedSeq > s.cursor || !resp.NeedSnapshot {
			s.cursor = resp.AppliedSeq
		}
		s.mu.Unlock()
		if resp.NeedSnapshot {
			continue
		}
		if n := len(req.Frames); n > 0 {
			r.reg.Counter("repl.shipped_frames").Add(int64(n))
		}
		if len(req.Snapshot) > 0 {
			r.reg.Counter("repl.snapshot_ships").Inc()
		}
		r.noteAck(resp.AppliedSeq)
		r.setLag(s, r.d.durableSeq())
	}
}

// setLag publishes the follower's lag gauges: a per-follower
// repl.lag_records.follower<i> series and the group-wide maximum as
// repl.lag_records.
func (r *Replication) setLag(s *shipper, durable uint64) {
	lag := int64(0)
	if c := s.acked(); durable > c {
		lag = int64(durable - c)
	}
	r.reg.Gauge(fmt.Sprintf("repl.lag_records.follower%d", s.idx)).Set(lag)
	maxLag := int64(0)
	r.shipMu.Lock()
	shippers := append([]*shipper(nil), r.shippers...)
	r.shipMu.Unlock()
	for _, sh := range shippers {
		var l int64
		if c := sh.acked(); durable > c {
			l = int64(durable - c)
		}
		if l > maxLag {
			maxLag = l
		}
	}
	r.reg.Gauge("repl.lag_records").Set(maxLag)
}

// isNotPrimaryErr reports whether a ship response decoded to the
// follower's "your epoch is stale" rejection.
func isNotPrimaryErr(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == CodeNotPrimary
}

// stepDown demotes this node to follower (keeping its epoch — see the
// package comment) after discovering a newer primary.
func (r *Replication) stepDown() {
	r.mu.Lock()
	if r.role == RoleFollower {
		r.mu.Unlock()
		return
	}
	r.role = RoleFollower
	r.mu.Unlock()
	r.reg.Counter("repl.stepdowns").Inc()
	r.wakeSettles()
	// The shipper goroutines observe the role change and exit; their
	// entries are replaced wholesale on the next promotion.
}

// shipSnapshot is what snapshotForShip hands the shipper: the encoded
// dataset plus the {seq, epoch, fence} it covers.
type shipSnapshot struct {
	data         []byte
	seq          uint64
	epoch        uint64
	fence        map[string]uint64
	fenceVersion uint64
}

// snapshotForShip compacts local state to disk (making everything
// durable — a shipped snapshot must never contain un-fsynced records, or
// a primary crash could leave a follower holding a "future" the restarted
// primary would then contradict at the same epoch) and returns the
// encoded dataset with the {seq, epoch, fence} it covers.
func (r *Replication) snapshotForShip() (shipSnapshot, error) {
	r.store.mu.Lock()
	if r.d.closed {
		r.store.mu.Unlock()
		return shipSnapshot{}, fmt.Errorf("%w: durability closed", ErrDurability)
	}
	if err := r.d.snapshotLocked(); err != nil {
		r.store.mu.Unlock()
		return shipSnapshot{}, err
	}
	ds := r.store.datasetLocked()
	snap := shipSnapshot{seq: r.d.seq, epoch: r.d.epoch}
	snap.fence, snap.fenceVersion = r.store.fenceStateLocked()
	r.store.mu.Unlock()
	var buf bytes.Buffer
	if err := ds.EncodeJSON(&buf); err != nil {
		return shipSnapshot{}, err
	}
	snap.data = buf.Bytes()
	return snap, nil
}

// ApplyShip is the follower half of the protocol (POST /v1/repl/frames).
// Epoch rules, in order:
//
//  1. Sender's epoch below ours → ErrNotPrimary (stale primary; it must
//     step down).
//  2. We are primary at the same epoch → ErrNotPrimary (split brain; at
//     most one writer per epoch, and we are it).
//  3. Sender's epoch above ours with only frames → NeedSnapshot (epochs
//     are adopted via snapshot only).
//  4. Snapshot present → reset to it (state, seq, and epoch).
//  5. Equal epoch, frames → append + apply, idempotently.
func (r *Replication) ApplyShip(ctx context.Context, req ReplShipRequest) (ReplShipResponse, error) {
	if err := ctx.Err(); err != nil {
		return ReplShipResponse{}, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	own := r.d.Epoch()
	if req.Epoch < own {
		return ReplShipResponse{}, fmt.Errorf("%w: ship from epoch %d, ours is %d", ErrNotPrimary, req.Epoch, own)
	}
	if r.Role() == RolePrimary {
		if req.Epoch == own {
			return ReplShipResponse{}, fmt.Errorf("%w: split brain — both primaries at epoch %d", ErrNotPrimary, own)
		}
		// A newer primary exists; this node missed its demotion. Step down
		// and take the ship as a follower.
		r.logf("repl: ship from newer epoch %d (ours %d): stepping down", req.Epoch, own)
		r.stepDown()
	}
	r.mu.Lock()
	if req.PrimarySeq > r.lastPrimarySeq {
		r.lastPrimarySeq = req.PrimarySeq
	}
	r.mu.Unlock()

	if len(req.Snapshot) > 0 {
		if err := r.resetFromSnapshot(req); err != nil {
			return ReplShipResponse{}, err
		}
		return ReplShipResponse{AppliedSeq: r.d.durableSeq(), Epoch: r.d.Epoch(), Durable: true}, nil
	}
	if req.Epoch > own {
		return ReplShipResponse{AppliedSeq: r.d.durableSeq(), Epoch: own, Durable: true, NeedSnapshot: true}, nil
	}
	acked, err := r.applyFrames(req.Frames, own)
	if err != nil {
		return ReplShipResponse{}, err
	}
	r.publishOwnLag()
	resp := ReplShipResponse{AppliedSeq: r.d.durableSeq(), Epoch: own, Durable: true}
	r.store.notifySubmitted(acked)
	return resp, nil
}

// publishOwnLag exports the follower's own view of its lag.
func (r *Replication) publishOwnLag() {
	r.mu.RLock()
	hwm := r.lastPrimarySeq
	r.mu.RUnlock()
	lag := int64(0)
	if durable := r.d.durableSeq(); hwm > durable {
		lag = int64(hwm - durable)
	}
	r.reg.Gauge("repl.lag_records").Set(lag)
}

// applyFrames journals and applies shipped frames under one store
// critical section: skip what we already have, verify CRC + decode +
// contiguity, append to our WAL (fsynced), replay into memory. A gap
// (first new frame beyond seq+1) applies nothing and reports our cursor;
// the primary reships from there. epoch is the epoch ApplyShip's gate
// validated against; it is re-checked under the lock so the
// validate-and-apply pair is atomic.
func (r *Replication) applyFrames(frames []ReplFrame, epoch uint64) ([]BatchSubmission, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	if r.d.closed {
		return nil, fmt.Errorf("%w: durability closed", ErrDurability)
	}
	// ApplyShip's epoch/role gate ran before this critical section; a
	// concurrent promotion (SetRole persists a higher epoch, then flips
	// the role) may have landed in between. Appending the old lineage's
	// frames after the new epoch's first writes would interleave two
	// histories at contiguous seqs — exactly the failover race the epoch
	// fence exists to prevent — so the gate is re-applied under the lock.
	if own := r.d.epoch; own != epoch {
		return nil, fmt.Errorf("%w: epoch advanced to %d during ship at epoch %d", ErrNotPrimary, own, epoch)
	}
	if r.Role() == RolePrimary {
		return nil, fmt.Errorf("%w: split brain — both primaries at epoch %d", ErrNotPrimary, epoch)
	}
	fresh := frames[:0:0]
	recs := make([]walRecord, 0, len(frames))
	next := r.d.seq + 1
	for _, f := range frames {
		if f.Seq < next {
			continue // already applied: replay is idempotent
		}
		if f.Seq != next {
			return nil, nil // gap: report our cursor, primary reships
		}
		if crc32.ChecksumIEEE(f.Payload) != f.CRC {
			return nil, fmt.Errorf("%w: frame %d fails CRC", ErrMalformedRequest, f.Seq)
		}
		var rec walRecord
		if err := json.Unmarshal(f.Payload, &rec); err != nil {
			return nil, fmt.Errorf("%w: frame %d undecodable: %v", ErrMalformedRequest, f.Seq, err)
		}
		if rec.Seq != f.Seq {
			return nil, fmt.Errorf("%w: frame %d carries record seq %d", ErrMalformedRequest, f.Seq, rec.Seq)
		}
		fresh = append(fresh, f)
		recs = append(recs, rec)
		next++
	}
	if len(fresh) == 0 {
		return nil, nil
	}
	if err := r.d.appendReplicatedLocked(fresh); err != nil {
		return nil, err
	}
	var acked []BatchSubmission
	for _, rec := range recs {
		// Replay through the recovery path: validator-rejected records are
		// skipped identically on both sides, keeping histories aligned.
		if r.store.replayRecordLocked(rec) && rec.Op == opSubmit {
			acked = append(acked, BatchSubmission{Account: rec.Account, Task: rec.Task, Value: rec.Value, At: rec.Time})
		}
	}
	r.reg.Counter("repl.applied_frames").Add(int64(len(fresh)))
	r.d.maybeCompactLocked()
	return acked, nil
}

// resetFromSnapshot replaces local state with a shipped snapshot,
// adopting its dataset, sequence number, and epoch, and persisting the
// result before answering (the adoption must survive a crash).
func (r *Replication) resetFromSnapshot(req ReplShipRequest) error {
	ds, err := mcs.DecodeJSON(bytes.NewReader(req.Snapshot))
	if err != nil {
		return fmt.Errorf("%w: snapshot undecodable: %v", ErrMalformedRequest, err)
	}
	rebuilt := storeFromDataset(ds)
	r.store.mu.Lock()
	defer r.store.mu.Unlock()
	if r.d.closed {
		return fmt.Errorf("%w: durability closed", ErrDurability)
	}
	// Re-apply ApplyShip's epoch/role gate under the lock (see
	// applyFrames): a promotion that landed after the gate must not be
	// erased by a stale snapshot rewinding state, seq, and epoch.
	if own := r.d.epoch; req.Epoch < own {
		return fmt.Errorf("%w: snapshot from epoch %d, ours is %d", ErrNotPrimary, req.Epoch, own)
	} else if r.Role() == RolePrimary {
		if req.Epoch == own {
			return fmt.Errorf("%w: split brain — both primaries at epoch %d", ErrNotPrimary, own)
		}
		// A newer primary's snapshot raced our own promotion: this node
		// missed its demotion. Step down (the shippers observe the role
		// change and exit) and take the reset.
		r.logf("repl: snapshot from newer epoch %d (ours %d): stepping down", req.Epoch, own)
		r.stepDown()
	}
	r.store.tasks = rebuilt.tasks
	r.store.accounts = rebuilt.accounts
	r.store.order = rebuilt.order
	// Fence state must be installed before adoptSnapshotLocked writes the
	// local snapshot envelope, so the adopted fence is durable with the
	// adopted dataset.
	r.store.resetFenceLocked(req.Fence, req.FenceVersion)
	if err := r.d.adoptSnapshotLocked(req.SnapshotSeq, req.Epoch); err != nil {
		return err
	}
	r.reg.Counter("repl.snapshot_resets").Inc()
	r.logf("repl: reset from snapshot: seq %d, epoch %d, %d accounts", req.SnapshotSeq, req.Epoch, len(r.store.accounts))
	return nil
}

// SetRole handles POST /v1/repl/role: the router's promotion/demotion
// lever. Promotion requires a strictly newer epoch, which is persisted
// before the first write is accepted; demotion keeps the node's own epoch
// (see the package comment for why).
func (r *Replication) SetRole(ctx context.Context, req ReplRoleRequest) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	own := r.d.Epoch()
	switch req.Role {
	case RolePrimary:
		if req.Epoch <= own {
			return fmt.Errorf("%w: promotion epoch %d not above ours (%d)", ErrMalformedRequest, req.Epoch, own)
		}
		if err := r.d.persistEpoch(req.Epoch); err != nil {
			return err
		}
		r.stopShippers()
		r.mu.Lock()
		r.role = RolePrimary
		r.primary = ""
		r.mu.Unlock()
		r.shipMu.Lock()
		r.ackSeq = 0 // follower acks below the new epoch do not count
		r.shipMu.Unlock()
		r.startShippersLocked(req.Followers)
		r.wakeSettles()
		r.reg.Counter("repl.promotions").Inc()
		r.logf("repl: promoted to primary at epoch %d (%d followers)", req.Epoch, len(req.Followers))
		return nil
	case RoleFollower:
		if req.Epoch < own {
			return fmt.Errorf("%w: demotion epoch %d below ours (%d)", ErrMalformedRequest, req.Epoch, own)
		}
		r.mu.Lock()
		wasPrimary := r.role == RolePrimary
		r.role = RoleFollower
		r.primary = req.Primary
		r.mu.Unlock()
		if wasPrimary {
			r.stopShippers()
			r.wakeSettles()
			r.logf("repl: demoted to follower of %s (epoch stays %d)", req.Primary, own)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown role %q", ErrMalformedRequest, req.Role)
	}
}

// Status reports the node's replication state (GET /v1/repl/status).
func (r *Replication) Status() ReplStatusResponse {
	r.mu.RLock()
	role, hwm := r.role, r.lastPrimarySeq
	r.mu.RUnlock()
	durable := r.d.durableSeq()
	resp := ReplStatusResponse{
		Role:       role,
		Epoch:      r.d.Epoch(),
		DurableSeq: durable,
		AckMode:    r.mode,
	}
	if role == RoleFollower && hwm > durable {
		resp.Lag = hwm - durable
	}
	if role == RolePrimary {
		r.shipMu.Lock()
		shippers := append([]*shipper(nil), r.shippers...)
		r.shipMu.Unlock()
		for _, s := range shippers {
			fs := ReplFollowerStatus{Endpoint: s.endpoint, AckedSeq: s.acked()}
			if durable > fs.AckedSeq {
				fs.Lag = durable - fs.AckedSeq
			}
			resp.Followers = append(resp.Followers, fs)
		}
	}
	return resp
}

func (r *Replication) logf(format string, args ...any) {
	if r.log != nil {
		r.log.Printf(format, args...)
	}
}
