package platform

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestClientHonorsRetryAfterOn429(t *testing.T) {
	// A rate-limiting server advertising a 1s wait: the client must not
	// hammer it — the retry may arrive no earlier than the advertised
	// interval, even though its own backoff (1ms base) is far shorter.
	var calls atomic.Int32
	var firstCall, secondCall atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			firstCall.Store(time.Now().UnixNano())
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeRateLimited, Error: "slow down"})
		default:
			secondCall.Store(time.Now().UnixNano())
			_ = json.NewEncoder(w).Encode([]TaskDTO{{ID: 0}})
		}
	}))
	t.Cleanup(srv.Close)

	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:     srv.Client(),
		MaxRetries:     2,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	})
	if _, err := client.Tasks(context.Background()); err != nil {
		t.Fatalf("rate-limited request not absorbed: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
	waited := time.Duration(secondCall.Load() - firstCall.Load())
	if waited < time.Second {
		t.Fatalf("retry arrived after %v, before the advertised 1s Retry-After", waited)
	}
}

func TestClientRetries429WithRateLimitedCodeButNoHeader(t *testing.T) {
	// rate_limited without a Retry-After header still signals "try later".
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeRateLimited, Error: "slow down"})
			return
		}
		_ = json.NewEncoder(w).Encode([]TaskDTO{{ID: 0}})
	}))
	t.Cleanup(srv.Close)
	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:     srv.Client(),
		MaxRetries:     1,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
	})
	if _, err := client.Tasks(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

func TestClientDoesNotRetrySemantic429(t *testing.T) {
	// account_cap_reached is also a 429, but waiting will not clear it —
	// without a Retry-After hint the client must not retry it.
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeAccountCapReached, Error: "cap"})
	}))
	t.Cleanup(srv.Close)
	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:     srv.Client(),
		MaxRetries:     5,
		RetryBaseDelay: time.Millisecond,
	})
	_, err := client.Tasks(context.Background())
	if !errors.Is(err, ErrTooManyAccounts) {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want exactly 1", got)
	}
}

func TestClientBackoffAbortsOnContextCancel(t *testing.T) {
	// Cancellation mid-backoff must return promptly with the context
	// error, not sleep out the full (long) delay.
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "60") // an hour-long nap if honored blindly
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeRateLimited, Error: "wait"})
	}))
	t.Cleanup(srv.Close)
	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient: srv.Client(),
		MaxRetries: 3,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := client.Tasks(ctx)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled backoff blocked for %v", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled surfaced", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (cancel during the first backoff)", got)
	}
}

func TestClientRetriesTornBody(t *testing.T) {
	// A 200 whose body dies mid-transfer is an ack-was-lost case: the
	// client must retry rather than surface a decode error.
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Content-Length", "1024")
			_, _ = fmt.Fprint(w, `[{"id":`) // cut off mid-JSON
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler) // tear the connection
		}
		_ = json.NewEncoder(w).Encode([]TaskDTO{{ID: 7}})
	}))
	t.Cleanup(srv.Close)
	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:     srv.Client(),
		MaxRetries:     2,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	})
	tasks, err := client.Tasks(context.Background())
	if err != nil {
		t.Fatalf("torn body not retried: %v", err)
	}
	if len(tasks) != 1 || tasks[0].ID != 7 {
		t.Fatalf("tasks = %+v", tasks)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

func TestClientBreakerOpensAndFailsFast(t *testing.T) {
	// A persistently failing server: the breaker opens after the threshold
	// and subsequent calls fail locally without touching the network.
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:       srv.Client(),
		MaxRetries:       0,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // stays open for the test's lifetime
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := client.Tasks(ctx); err == nil {
			t.Fatal("failing server must error")
		}
	}
	if st := client.BreakerState(); st != BreakerOpen {
		t.Fatalf("breaker state = %v after threshold failures", st)
	}
	before := calls.Load()
	_, err := client.Tasks(ctx)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still sent a request")
	}
}

func TestClientBreakerRecoversViaProbe(t *testing.T) {
	// Server heals after two failures; a short cooldown lets the probe
	// through, which closes the circuit.
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode([]TaskDTO{{ID: 0}})
	}))
	t.Cleanup(srv.Close)
	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:       srv.Client(),
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Millisecond,
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		_, _ = client.Tasks(ctx)
	}
	if st := client.BreakerState(); st == BreakerClosed {
		t.Fatal("breaker still closed after threshold failures")
	}
	healthy.Store(true)
	time.Sleep(20 * time.Millisecond) // past the cooldown
	if _, err := client.Tasks(ctx); err != nil {
		t.Fatalf("probe after heal failed: %v", err)
	}
	if st := client.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker state = %v after successful probe", st)
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		h    string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{" 2 ", 2 * time.Second},
		{"-1", 0},
		{"garbage", 0},
		{now.Add(90 * time.Second).UTC().Format(http.TimeFormat), 90 * time.Second},
		{now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0}, // past date
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.h, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.h, got, tc.want)
		}
	}
}
