package platform

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

// TestPurgeFencedDropsDataKeepsFence pins the purge contract on a local
// store: PurgeFenced(v) drops the data of accounts fenced at or below v —
// and ONLY those — while the fence map and watermark survive, so a stale
// writer still gets wrong_shard after the GC. Re-purging is free (no
// effect, no error): the migration coordinator re-issues purges on
// resume.
func TestPurgeFencedDropsDataKeepsFence(t *testing.T) {
	s := NewLocalStore(testTasks(2))
	ctx := context.Background()
	now := time.Now()
	for _, a := range []string{"a", "b", "c"} {
		if err := s.Submit(ctx, a, 0, 1, now); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Fence(ctx, 2, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Fence(ctx, 3, []string{"c"}); err != nil {
		t.Fatal(err)
	}

	if _, err := s.PurgeFenced(ctx, 0); !errors.Is(err, ErrMalformedRequest) {
		t.Errorf("PurgeFenced(0) = %v, want ErrMalformedRequest", err)
	}
	if n, err := s.PurgeFenced(ctx, 1); n != 0 || err != nil {
		t.Errorf("PurgeFenced(1) = (%d, %v), want (0, nil): nothing fenced that low", n, err)
	}

	n, err := s.PurgeFenced(ctx, 2)
	if err != nil || n != 2 {
		t.Fatalf("PurgeFenced(2) = (%d, %v), want (2, nil)", n, err)
	}
	ds, err := s.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Accounts) != 1 || ds.Accounts[0].ID != "c" {
		t.Errorf("post-purge dataset = %+v, want only the v3-fenced account c", ds.Accounts)
	}
	// The fence outlives the data on exactly the purged accounts.
	if err := s.Submit(ctx, "a", 0, 2, now); !errors.Is(err, ErrWrongShard) {
		t.Errorf("submit to purged account = %v, want ErrWrongShard", err)
	}
	if v := s.FenceVersion(); v != 3 {
		t.Errorf("fence watermark = %d after purge, want 3", v)
	}
	// Idempotent: nothing left at or below 2.
	if n, err := s.PurgeFenced(ctx, 2); n != 0 || err != nil {
		t.Errorf("re-purge = (%d, %v), want (0, nil)", n, err)
	}

	if n, err := s.PurgeFenced(ctx, 3); n != 1 || err != nil {
		t.Errorf("PurgeFenced(3) = (%d, %v), want (1, nil)", n, err)
	}
	if ds, _ := s.Dataset(ctx); len(ds.Accounts) != 0 {
		t.Errorf("dataset holds %d accounts after full purge, want 0", len(ds.Accounts))
	}
	if err := s.Submit(ctx, "c", 0, 2, now); !errors.Is(err, ErrWrongShard) {
		t.Errorf("submit to purged account c = %v, want ErrWrongShard", err)
	}
}

// TestPurgeFencedDurableReplay: the purge is a journaled WAL record, so a
// crash-restart WITHOUT a snapshot (Abort) replays it and reconstructs
// the purged-but-still-fenced state.
func TestPurgeFencedDurableReplay(t *testing.T) {
	dir := t.TempDir()
	store, d, _, err := OpenDurable(dir, testTasks(2), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	now := time.Now()
	for _, a := range []string{"moved", "kept"} {
		if err := store.Submit(ctx, a, 0, 1, now); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Fence(ctx, 2, []string{"moved"}); err != nil {
		t.Fatal(err)
	}
	if n, err := store.PurgeFenced(ctx, 2); n != 1 || err != nil {
		t.Fatalf("PurgeFenced = (%d, %v), want (1, nil)", n, err)
	}
	if err := d.Abort(); err != nil {
		t.Fatal(err)
	}

	reopened, d2, _, err := OpenDurable(dir, testTasks(2), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d2.Close() })
	ds, err := reopened.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Accounts) != 1 || ds.Accounts[0].ID != "kept" {
		t.Errorf("replayed dataset = %+v, want only the unfenced account", ds.Accounts)
	}
	if err := reopened.Submit(ctx, "moved", 0, 2, now); !errors.Is(err, ErrWrongShard) {
		t.Errorf("replayed store accepts the purged account (err=%v), want ErrWrongShard", err)
	}
}

// noPurgeStore hides every capability beyond the base Store interface, so
// the purge route's 501 path is reachable.
type noPurgeStore struct{ Store }

// TestPurgeOverHTTP covers the wire: POST /v1/admin/purge drives
// PurgeFenced through Server, Client, and RemoteStore, and a backend
// without the FencePurger capability answers the typed unimplemented
// code instead of a generic 500.
func TestPurgeOverHTTP(t *testing.T) {
	store := NewLocalStore(testTasks(2))
	api := NewServer(store, nil)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	t.Cleanup(api.Close)
	ctx := context.Background()
	now := time.Now()
	if err := store.Submit(ctx, "gone", 0, 1, now); err != nil {
		t.Fatal(err)
	}
	if err := store.Fence(ctx, 2, []string{"gone"}); err != nil {
		t.Fatal(err)
	}

	remote := NewRemoteStore(NewClient(srv.URL, WithRetries(0)))
	n, err := remote.PurgeFenced(ctx, 2)
	if err != nil || n != 1 {
		t.Fatalf("remote PurgeFenced = (%d, %v), want (1, nil)", n, err)
	}
	if ds, _ := store.Dataset(ctx); len(ds.Accounts) != 0 {
		t.Errorf("backend holds %d accounts after remote purge, want 0", len(ds.Accounts))
	}
	// Zero ring version is refused on the wire too.
	if _, err := remote.PurgeFenced(ctx, 0); !errors.Is(err, ErrMalformedRequest) {
		t.Errorf("remote PurgeFenced(0) = %v, want ErrMalformedRequest", err)
	}

	plain := NewServer(noPurgeStore{NewLocalStore(testTasks(2))}, nil)
	plainSrv := httptest.NewServer(plain)
	t.Cleanup(plainSrv.Close)
	t.Cleanup(plain.Close)
	if _, err := NewRemoteStore(NewClient(plainSrv.URL, WithRetries(0))).PurgeFenced(ctx, 2); !errors.Is(err, ErrUnimplemented) {
		t.Errorf("purge against a non-purger backend = %v, want ErrUnimplemented", err)
	}
}
