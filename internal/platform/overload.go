package platform

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ServerLimits tunes the platform's overload protection. The zero value
// disables everything, preserving the unprotected behavior for embedded
// and test use; cmd/mcsplatform enables sensible defaults.
type ServerLimits struct {
	// MaxConcurrent is the admission gate's capacity in weight units
	// (cheap routes cost 1, /v1/dataset 2, /v1/aggregate 4 — see
	// routeWeight). Zero disables the gate.
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for admission once the
	// gate is full; arrivals beyond it are shed immediately with 503 +
	// Retry-After. Zero means no waiting: over-capacity requests shed at
	// once.
	MaxQueue int
	// QueueTimeout caps how long an admitted-queue request waits before
	// it is shed; it guarantees a bounded worst-case latency even for
	// queued requests. Zero means 1s (when the gate is enabled).
	QueueTimeout time.Duration
	// RequestTimeout is the per-request deadline attached to the request
	// context and propagated into store, durability, and aggregation
	// work. Zero means no deadline.
	RequestTimeout time.Duration
	// RatePerSec is the per-account token-bucket refill rate for mutating
	// routes (submissions, fingerprints). Zero disables rate limiting.
	RatePerSec float64
	// RateBurst is the bucket capacity. Zero means ceil(RatePerSec) but
	// at least 1.
	RateBurst int
	// RetryAfterHint is the Retry-After advertised on shed (503) and
	// rate-limited (429) responses when no tighter estimate exists. Zero
	// means 1s.
	RetryAfterHint time.Duration
}

func (l ServerLimits) withDefaults() ServerLimits {
	if l.MaxConcurrent > 0 && l.QueueTimeout == 0 {
		l.QueueTimeout = time.Second
	}
	if l.RatePerSec > 0 && l.RateBurst == 0 {
		l.RateBurst = int(l.RatePerSec + 0.999)
		if l.RateBurst < 1 {
			l.RateBurst = 1
		}
	}
	if l.RetryAfterHint == 0 {
		l.RetryAfterHint = time.Second
	}
	return l
}

// enabled reports whether any protection is active.
func (l ServerLimits) enabled() bool {
	return l.MaxConcurrent > 0 || l.RatePerSec > 0 || l.RequestTimeout > 0
}

// errShed classifies why admission failed (queue full vs. waited too
// long); both surface as ErrOverloaded on the wire.
var (
	errGateQueueFull = fmt.Errorf("%w: admission queue full", ErrOverloaded)
	errGateTimeout   = fmt.Errorf("%w: timed out waiting for admission", ErrOverloaded)
)

// gateWaiter is one queued acquisition. granted is written under the
// gate's lock; ready is closed exactly once when capacity is assigned.
type gateWaiter struct {
	weight  int
	granted bool
	ready   chan struct{}
}

// gate is a weighted-concurrency admission gate with a bounded FIFO wait
// queue. Heavier requests consume more capacity units; requests that
// cannot be admitted wait (up to maxQueue of them) and are shed when the
// queue is full or their wait budget expires — never queued unboundedly.
type gate struct {
	mu       sync.Mutex
	capacity int
	maxQueue int
	inUse    int
	queue    []*gateWaiter
}

func newGate(capacity, maxQueue int) *gate {
	return &gate{capacity: capacity, maxQueue: maxQueue}
}

// tryAcquireLocked takes weight units if they fit.
func (g *gate) tryAcquireLocked(weight int) bool {
	if g.inUse+weight <= g.capacity {
		g.inUse += weight
		return true
	}
	return false
}

// acquire admits the caller or sheds it. A weight above capacity is
// clamped so an expensive route can still run (alone) rather than being
// unadmittable. FIFO order: a queued heavy request is not starved by
// lighter arrivals behind it.
func (g *gate) acquire(ctx context.Context, weight int, maxWait time.Duration) error {
	if weight < 1 {
		weight = 1
	}
	if weight > g.capacity {
		weight = g.capacity
	}
	g.mu.Lock()
	if len(g.queue) == 0 && g.tryAcquireLocked(weight) {
		g.mu.Unlock()
		return nil
	}
	if len(g.queue) >= g.maxQueue {
		g.mu.Unlock()
		return errGateQueueFull
	}
	w := &gateWaiter{weight: weight, ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.mu.Unlock()

	var timeout <-chan time.Time
	if maxWait > 0 {
		t := time.NewTimer(maxWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
	case <-timeout:
	}
	// Withdraw — unless the grant raced our timeout, in which case we own
	// capacity already and proceeding is cheaper than re-queueing it.
	g.mu.Lock()
	if w.granted {
		g.mu.Unlock()
		return nil
	}
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	return errGateTimeout
}

// release returns weight units and grants queued waiters in FIFO order.
func (g *gate) release(weight int) {
	g.mu.Lock()
	g.inUse -= weight
	if g.inUse < 0 {
		g.inUse = 0
	}
	for len(g.queue) > 0 {
		w := g.queue[0]
		if !g.tryAcquireLocked(w.weight) {
			break
		}
		w.granted = true
		close(w.ready)
		g.queue = g.queue[1:]
	}
	g.mu.Unlock()
}

// load returns the current in-use units and queue length.
func (g *gate) load() (inUse, queued int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse, len(g.queue)
}

// saturated reports that a new arrival would be shed right now: capacity
// exhausted and no room left to wait.
func (g *gate) saturated() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse >= g.capacity && len(g.queue) >= g.maxQueue
}

// tokenBucket is one account's rate-limit state.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// accountLimiter applies a token bucket per account. Bucket state is tiny
// (two words); the map is bounded in practice by the store's account cap,
// and an LRU-ish sweep drops buckets that have been full (idle) for a
// while so an unbounded stream of one-shot account names cannot grow it
// forever.
type accountLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*tokenBucket
	now     func() time.Time // injectable clock for tests
}

func newAccountLimiter(rate float64, burst int) *accountLimiter {
	return &accountLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// sweepLocked drops buckets that have fully refilled — they carry no
// information beyond "idle" — once the map grows past a threshold.
func (l *accountLimiter) sweepLocked(now time.Time) {
	const sweepAt = 16384
	if len(l.buckets) < sweepAt {
		return
	}
	for id, b := range l.buckets {
		if b.tokens+l.rate*now.Sub(b.last).Seconds() >= l.burst {
			delete(l.buckets, id)
		}
	}
}

// allow consumes one token for account, reporting whether the request may
// proceed and, when it may not, how long until the next token.
func (l *accountLimiter) allow(account string) (wait time.Duration, ok bool) {
	return l.allowN(account, 1)
}

// allowN consumes n tokens for account, all or nothing: a batch costs as
// many tokens as it has items, so batching cannot launder a rate limit.
// The cost is clamped to the burst size — a batch bigger than the bucket
// could otherwise never be admitted — which still charges the account the
// full bucket. On refusal, wait is the time until n tokens will exist.
func (l *accountLimiter) allowN(account string, n int) (wait time.Duration, ok bool) {
	cost := float64(n)
	if cost < 1 {
		cost = 1
	}
	if cost > l.burst {
		cost = l.burst
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[account]
	if b == nil {
		l.sweepLocked(now)
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[account] = b
	} else {
		b.tokens += l.rate * now.Sub(b.last).Seconds()
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= cost {
		b.tokens -= cost
		return 0, true
	}
	deficit := cost - b.tokens
	return time.Duration(deficit / l.rate * float64(time.Second)), false
}

// retryAfterValue formats a wait for the Retry-After header: whole
// seconds, rounded up, at least 1 (a "0" invites an immediate hammer).
func retryAfterValue(wait time.Duration) string {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// isCtxErr reports whether err is (or wraps) a context cancellation.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
