package platform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/wal"
)

// Durable file layout inside a data directory.
const (
	walFileName      = "wal.log"
	snapshotFileName = "snapshot.json"
	snapshotTempName = "snapshot.json.tmp"
)

// snapshotVersion gates the snapshot envelope schema.
const snapshotVersion = 1

// WAL operation tags carried in walRecord.Op.
const (
	opSubmit      = "submit"
	opFingerprint = "fingerprint"
	// opFence marks a set of accounts as moved off this shard by an online
	// reshard (see Fencer). A fence is a mutation like any other: journaled
	// before it takes effect and shipped to followers verbatim, so a
	// promoted follower refuses the same writes its dead primary did.
	opFence = "fence"
	// opUnfencePurge drops the data of every account fenced at or below
	// the record's ring version — the post-migration GC (see FencePurger).
	// The fence map and fence-version watermark survive the purge, so the
	// shard keeps answering wrong_shard to stale writers; only the moved
	// observations and fingerprints are released. Journaled and shipped
	// like any write, so followers purge in lockstep.
	opUnfencePurge = "unfence_purge"
)

// walRecord is one durable mutation, JSON-encoded as the payload of a WAL
// frame. Account registration is implicit: replaying an account's first
// record re-registers it, in the same order the WAL was written.
type walRecord struct {
	Seq      uint64    `json:"seq"`
	Op       string    `json:"op"`
	Account  string    `json:"account"`
	Task     int       `json:"task,omitempty"`
	Value    float64   `json:"value,omitempty"`
	Time     time.Time `json:"time"`
	Features []float64 `json:"features,omitempty"`
	// Ring and Accounts are opFence fields: the ring version the fence was
	// installed at and the accounts it covers.
	Ring     uint64   `json:"ring,omitempty"`
	Accounts []string `json:"accounts,omitempty"`
}

// snapshotFile is the envelope written to snapshot.json: the campaign in
// the stable mcs JSON schema plus the WAL sequence number it covers, so
// recovery can skip WAL records the snapshot already contains (the
// crash-between-snapshot-and-WAL-reset window). Epoch is the replication
// epoch the node last belonged to; it rides in the envelope rather than
// in WAL records so a follower's sequence numbers stay byte-identical to
// the primary's (see repl.go for the epoch rules).
type snapshotFile struct {
	Version int             `json:"version"`
	Seq     uint64          `json:"seq"`
	Epoch   uint64          `json:"epoch,omitempty"`
	Dataset json.RawMessage `json:"dataset"`
	// Fence and FenceVersion carry resharding fence state across WAL
	// compaction, same as Epoch: the WAL resets on snapshot, so a fence
	// journaled as opFence must also ride in the envelope or a restart
	// after compaction would forget it and take writes for moved accounts.
	Fence        map[string]uint64 `json:"fence,omitempty"`
	FenceVersion uint64            `json:"fence_version,omitempty"`
}

// DurableOptions tunes OpenDurable.
type DurableOptions struct {
	// FS is the filesystem seam; nil means the real OS filesystem. Tests
	// inject a wal.FaultFS here to script crashes.
	FS wal.FS
	// SnapshotEvery compacts the WAL into a fresh snapshot after this
	// many appended records; 0 snapshots only at Close.
	SnapshotEvery int
	// CommitLinger enables group commit when positive: instead of one
	// fsync per mutation under the store lock, mutations are journaled
	// (buffered) and applied under the lock, and the fsync that
	// acknowledges them runs outside it, coalescing every record appended
	// in the meantime into one sync. The leader of an fsync round waits up
	// to CommitLinger for more records to join (ending early once
	// CommitMaxBatch have accumulated), so the linger bounds the extra ack
	// latency a lone submitter pays. Zero keeps the original
	// one-fsync-per-record behavior.
	//
	// Group commit keeps the acknowledgment contract — an acknowledged
	// mutation has been fsynced — but weakens read-your-unacked-writes
	// isolation: a mutation is visible to reads between its apply and its
	// group fsync. If that fsync fails, the caller gets ErrDurability (the
	// op is NOT acknowledged) while the store keeps the applied state,
	// which matches the log it was written to; a retry then reports
	// ErrDuplicateReport, the same ambiguous-ack outcome a torn network
	// ack already produces.
	CommitLinger time.Duration
	// CommitMaxBatch caps how many records a group commit waits for
	// before fsyncing without further linger; 0 means 64.
	CommitMaxBatch int
	// Registry receives WAL metrics; nil means obs.Default().
	Registry *obs.Registry
	// Logger receives recovery and snapshot notices; nil disables them.
	Logger *log.Logger
}

// RecoveryStats summarizes what OpenDurable reconstructed from disk.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot file was found.
	SnapshotLoaded bool
	// SnapshotSeq is the WAL sequence number the snapshot covers.
	SnapshotSeq uint64
	// WALRecords is the number of valid records in the WAL.
	WALRecords int
	// RecordsReplayed is how many WAL records changed recovered state.
	RecordsReplayed int
	// RecordsSkipped counts stale records (already covered by the
	// snapshot) and records the replay validator rejected.
	RecordsSkipped int
	// BytesTruncated is the torn/corrupt tail cut off the WAL.
	BytesTruncated int64
	// CorruptReason explains the truncation ("" when the tail was clean).
	CorruptReason string
}

// Durability journals a Store's mutations into a write-ahead log and
// periodically compacts the log into snapshots. All methods that touch
// the WAL run under the owning store's mutex: appendLocked and
// maybeCompactLocked are called by the store with the lock held, and the
// public Snapshot/Close take it themselves.
type Durability struct {
	dir           string
	fs            wal.FS
	w             *wal.Writer
	store         *LocalStore
	seq           uint64 // sequence number of the last frame written
	sinceSnapshot int
	snapshotEvery int
	gc            *groupCommit // nil: one fsync per record, inline
	reg           *obs.Registry
	log           *log.Logger
	closed        bool

	// Replication bookkeeping (all guarded by the store mutex like seq).
	// epoch is the replication epoch persisted in the snapshot envelope;
	// walSeq0 is the sequence number of the first frame currently in the
	// WAL file and walOffsets[i] its frame's byte offset for seq
	// walSeq0+i, so a follower catching up by sequence range costs one
	// index lookup + one ranged read instead of a full-file scan. repl is
	// the attached replication manager (nil on an unreplicated node); it
	// is set once by NewReplication before the store is shared.
	epoch      uint64
	walSeq0    uint64
	walOffsets []int64
	repl       *Replication
}

// commitToken identifies a journaled mutation. The store holds it across
// the lock release and redeems it with waitDurable before acknowledging.
// wait marks a group-commit token whose fsync is still pending; an
// inline-fsync token is already durable but still carries its sequence
// number so the replication layer can gate a semi-sync ack on it. epoch
// is the replication epoch the record was appended under: the semi-sync
// settle refuses to ack a token whose lineage has since changed (a
// demotion's snapshot reset may have rolled the record back). The zero
// token means "nothing journaled" (no journal at all).
type commitToken struct {
	seq   uint64
	epoch uint64
	wait  bool
}

// groupCommit coalesces concurrent WAL fsyncs. Appenders (holding the
// store lock) publish the highest buffered sequence number; waiters
// (having released the store lock) elect a leader that fsyncs once for
// every record appended since the last sync, lingering briefly to let
// stragglers join. A snapshot makes everything durable at once and
// completes all waiters.
type groupCommit struct {
	linger   time.Duration
	maxBatch int

	mu       sync.Mutex
	cond     *sync.Cond
	appended uint64        // highest seq buffered in the WAL file
	synced   uint64        // highest seq known durable (fsync or snapshot)
	syncing  bool          // a leader is in flight
	wake     chan struct{} // pokes a lingering leader when the batch fills
	waiting  int           // goroutines blocked in waitDurable
	failSeq  uint64        // highest seq covered by a failed sync attempt
	failErr  error         // the error of that attempt
}

func newGroupCommit(linger time.Duration, maxBatch int) *groupCommit {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	c := &groupCommit{linger: linger, maxBatch: maxBatch, wake: make(chan struct{}, 1)}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// noteAppended publishes seq as buffered. Called with the store lock held
// (appends are serialized), so seq is monotone.
func (c *groupCommit) noteAppended(seq uint64) {
	c.mu.Lock()
	c.appended = seq
	full := c.appended-c.synced >= uint64(c.maxBatch)
	c.mu.Unlock()
	if full {
		select { // wake a lingering leader: the batch is as big as it gets
		case c.wake <- struct{}{}:
		default:
		}
	}
}

// markDurable records that everything up to seq is durable (a snapshot
// fsynced the full state) and releases every waiter at or below it.
func (c *groupCommit) markDurable(seq uint64) {
	c.mu.Lock()
	if seq > c.synced {
		c.synced = seq
	}
	if seq > c.appended {
		c.appended = seq
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// wait blocks until seq is durable (nil) or a sync attempt covering seq
// failed (that attempt's error). The first waiter to find no leader in
// flight becomes the leader: it lingers (bounded, ended early by a full
// batch), fsyncs once via sync, and publishes the outcome for everyone
// it covered.
func (c *groupCommit) wait(seq uint64, sync func() error, synced func(records, waiters int)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.waiting++
	defer func() { c.waiting-- }()
	for {
		if c.synced >= seq {
			return nil
		}
		if c.failSeq >= seq && c.failErr != nil {
			return c.failErr
		}
		if c.syncing {
			c.cond.Wait()
			continue
		}
		// Become the leader for this round.
		c.syncing = true
		if c.linger > 0 && c.appended-c.synced < uint64(c.maxBatch) {
			c.mu.Unlock()
			t := time.NewTimer(c.linger)
			select {
			case <-c.wake:
				t.Stop()
			case <-t.C:
			}
			c.mu.Lock()
		}
		target := c.appended
		covered := target - c.synced
		waiters := c.waiting
		c.mu.Unlock()
		err := sync()
		c.mu.Lock()
		c.syncing = false
		if err == nil {
			if target > c.synced {
				c.synced = target
			}
			if synced != nil {
				synced(int(covered), waiters)
			}
		} else if target > c.failSeq {
			c.failSeq = target
			c.failErr = err
		}
		c.cond.Broadcast()
	}
}

// OpenDurable opens (or creates) the durable platform state in dir and
// returns the recovered store with its attached durability layer. The
// recovery sequence is: load snapshot.json if present, then replay the
// WAL tail on top, truncating at the first torn or corrupt record — a
// damaged directory recovers to the longest valid prefix and serves,
// rather than crash-looping. tasks is used only when no snapshot exists
// (a snapshot carries its own task list).
func OpenDurable(dir string, tasks []mcs.Task, opts DurableOptions) (*LocalStore, *Durability, RecoveryStats, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = wal.OS()
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	var stats RecoveryStats
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, stats, fmt.Errorf("platform: durable dir: %w", err)
	}
	// A leftover temp file is a crash mid-snapshot-write; the durable
	// snapshot is still the previous one, so discard the partial file.
	_ = fsys.Remove(filepath.Join(dir, snapshotTempName))

	store := NewLocalStore(tasks)
	var seq, epoch uint64
	snapPath := filepath.Join(dir, snapshotFileName)
	if _, err := fsys.Stat(snapPath); err == nil {
		snap, ds, err := readSnapshot(fsys, snapPath)
		if err != nil {
			return nil, nil, stats, fmt.Errorf("platform: snapshot %s: %w", snapPath, err)
		}
		store = storeFromDataset(ds)
		store.resetFenceLocked(snap.Fence, snap.FenceVersion) // store not shared yet
		seq = snap.Seq
		epoch = snap.Epoch
		stats.SnapshotLoaded = true
		stats.SnapshotSeq = snap.Seq
	}

	w, scan, err := wal.Open(fsys, filepath.Join(dir, walFileName))
	if err != nil {
		return nil, nil, stats, fmt.Errorf("platform: %w", err)
	}
	stats.WALRecords = len(scan.Records)
	stats.BytesTruncated = scan.Truncated()
	if scan.Corrupt != nil {
		stats.CorruptReason = scan.Corrupt.Error()
	}

	kept := len(scan.Records)
	var firstWALSeq uint64
	for i, payload := range scan.Records {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// CRC-valid but undecodable: same treatment as a corrupt
			// tail — keep the prefix, cut the rest.
			if terr := w.TruncateTo(scan.Offsets[i]); terr != nil {
				_ = w.Close()
				return nil, nil, stats, fmt.Errorf("platform: wal repair: %w", terr)
			}
			stats.BytesTruncated += scan.Valid - scan.Offsets[i]
			stats.WALRecords = i
			stats.CorruptReason = fmt.Sprintf("record %d undecodable: %v", i, err)
			kept = i
			break
		}
		if i == 0 {
			firstWALSeq = rec.Seq
		}
		if rec.Seq <= seq {
			stats.RecordsSkipped++ // snapshot already covers it
			continue
		}
		if store.replayRecord(rec) {
			stats.RecordsReplayed++
		} else {
			stats.RecordsSkipped++
		}
		seq = rec.Seq
	}

	d := &Durability{
		dir:           dir,
		fs:            fsys,
		w:             w,
		store:         store,
		seq:           seq,
		epoch:         epoch,
		snapshotEvery: opts.SnapshotEvery,
		reg:           reg,
		log:           opts.Logger,
	}
	// Rebuild the seq → byte-offset index over the surviving WAL frames so
	// replication can serve catch-up ranges without rescanning the file.
	if kept > 0 {
		d.walSeq0 = firstWALSeq
		d.walOffsets = append([]int64(nil), scan.Offsets[:kept]...)
	} else {
		d.walSeq0 = seq + 1
	}
	if opts.CommitLinger > 0 {
		d.gc = newGroupCommit(opts.CommitLinger, opts.CommitMaxBatch)
		d.gc.markDurable(seq) // everything recovered from disk is durable
	}
	store.journal = d
	reg.Gauge("wal.size_bytes").Set(w.Size())
	reg.Gauge("wal.recovery_records_replayed").Set(int64(stats.RecordsReplayed))
	reg.Gauge("wal.recovery_bytes_truncated").Set(stats.BytesTruncated)
	d.logf("durability: recovered %s: snapshot=%v (seq %d), wal records=%d replayed=%d skipped=%d truncated=%d bytes",
		dir, stats.SnapshotLoaded, stats.SnapshotSeq, stats.WALRecords,
		stats.RecordsReplayed, stats.RecordsSkipped, stats.BytesTruncated)
	if stats.CorruptReason != "" {
		d.logf("durability: WAL tail repaired: %s", stats.CorruptReason)
	}
	return store, d, stats, nil
}

// readSnapshot decodes the snapshot envelope and its embedded dataset.
func readSnapshot(fsys wal.FS, path string) (snapshotFile, *mcs.Dataset, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return snapshotFile{}, nil, err
	}
	defer f.Close()
	var snap snapshotFile
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return snapshotFile{}, nil, fmt.Errorf("decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return snapshotFile{}, nil, fmt.Errorf("unsupported snapshot version %d", snap.Version)
	}
	ds, err := mcs.DecodeJSON(bytes.NewReader(snap.Dataset))
	if err != nil {
		return snapshotFile{}, nil, err
	}
	return snap, ds, nil
}

// storeFromDataset rebuilds in-memory store state from a snapshot
// dataset, preserving account registration order.
func storeFromDataset(ds *mcs.Dataset) *LocalStore {
	s := NewLocalStore(ds.Tasks)
	for i := range ds.Accounts {
		acct := &ds.Accounts[i]
		st := s.registerAccountLocked(acct.ID) // no lock needed: store not shared yet
		for _, o := range acct.Observations {
			st.observations[o.Task] = o
		}
		if len(acct.Fingerprint) > 0 {
			st.fingerprint = append([]float64(nil), acct.Fingerprint...)
		}
	}
	return s
}

// replayRecord applies one recovered WAL record. It tolerates records the
// current state already contains — a crash between the snapshot rename
// and the WAL reset leaves both holding the same operations — and
// silently drops records that fail validation rather than refusing to
// start. Returns whether state changed.
func (s *LocalStore) replayRecord(rec walRecord) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayRecordLocked(rec)
}

// replayRecordLocked is replayRecord with the store mutex already held —
// the follower apply path journals and replays a shipped frame under one
// critical section.
func (s *LocalStore) replayRecordLocked(rec walRecord) bool {
	switch rec.Op {
	case opSubmit:
		if rec.Account == "" || rec.Task < 0 || rec.Task >= len(s.tasks) || !isFinite(rec.Value) {
			return false
		}
		st := s.accounts[rec.Account]
		if st == nil {
			st = s.registerAccountLocked(rec.Account)
		} else if _, dup := st.observations[rec.Task]; dup {
			return false
		}
		st.observations[rec.Task] = mcs.Observation{Task: rec.Task, Value: rec.Value, Time: rec.Time}
		return true
	case opFingerprint:
		if rec.Account == "" || len(rec.Features) == 0 {
			return false
		}
		for _, f := range rec.Features {
			if !isFinite(f) {
				return false
			}
		}
		st := s.accounts[rec.Account]
		if st == nil {
			st = s.registerAccountLocked(rec.Account)
		}
		st.fingerprint = append([]float64(nil), rec.Features...)
		return true
	case opFence:
		if rec.Ring == 0 {
			return false
		}
		s.applyFenceLocked(rec.Ring, rec.Accounts)
		return true
	case opUnfencePurge:
		if rec.Ring == 0 {
			return false
		}
		return s.applyPurgeLocked(rec.Ring) > 0
	}
	return false
}

// appendLocked journals one mutation. Called by the store with its mutex
// held and the record fully validated, before the mutation is applied.
// Without group commit the frame is fsynced inline and the returned token
// is already settled; with group commit the frame is only buffered, and
// the caller must redeem the token with waitDurable — after releasing the
// store lock — before acknowledging. On error the store does not apply
// the mutation.
func (d *Durability) appendLocked(rec walRecord) (commitToken, error) {
	if d.closed {
		return commitToken{}, fmt.Errorf("%w: durability closed", ErrDurability)
	}
	rec.Seq = d.seq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		return commitToken{}, fmt.Errorf("%w: encode: %v", ErrDurability, err)
	}
	sw := d.reg.Timer("wal.append_seconds").Start()
	off := d.w.Size()
	err = d.w.Append(payload)
	sw.Stop()
	if err != nil {
		d.reg.Counter("wal.append_errors").Inc()
		return commitToken{}, fmt.Errorf("%w: append: %v", ErrDurability, err)
	}
	// The frame is on the log from here (even if the fsync may later fail
	// it can survive), so the sequence number is consumed either way.
	d.seq++
	d.walOffsets = append(d.walOffsets, off)
	if d.gc != nil {
		d.noteAppendedLocked(1)
		return commitToken{seq: d.seq, epoch: d.epoch, wait: true}, nil
	}
	fw := d.reg.Timer("wal.fsync_seconds").Start()
	err = d.w.Sync()
	fw.Stop()
	if err != nil {
		d.reg.Counter("wal.append_errors").Inc()
		return commitToken{}, fmt.Errorf("%w: fsync: %v", ErrDurability, err)
	}
	d.sinceSnapshot++
	d.reg.Counter("wal.records").Inc()
	d.reg.Gauge("wal.size_bytes").Set(d.w.Size())
	d.notifyDurable()
	return commitToken{seq: d.seq, epoch: d.epoch}, nil
}

// appendBatchLocked journals several mutations as one buffered WAL write.
// All-or-nothing at the process level: a failed write is repaired by the
// writer (no frame survives, no sequence number is consumed) and the
// whole batch reports the error. On success every record has a sequence
// number; the returned token covers the last one, so redeeming it makes
// the whole batch durable.
func (d *Durability) appendBatchLocked(recs []walRecord) (commitToken, error) {
	if d.closed {
		return commitToken{}, fmt.Errorf("%w: durability closed", ErrDurability)
	}
	if len(recs) == 0 {
		return commitToken{}, nil
	}
	payloads := make([][]byte, len(recs))
	for i := range recs {
		recs[i].Seq = d.seq + uint64(i) + 1
		p, err := json.Marshal(recs[i])
		if err != nil {
			return commitToken{}, fmt.Errorf("%w: encode: %v", ErrDurability, err)
		}
		payloads[i] = p
	}
	sw := d.reg.Timer("wal.append_seconds").Start()
	off := d.w.Size()
	err := d.w.AppendBatch(payloads)
	sw.Stop()
	if err != nil {
		d.reg.Counter("wal.append_errors").Inc()
		return commitToken{}, fmt.Errorf("%w: append batch: %v", ErrDurability, err)
	}
	d.seq += uint64(len(recs))
	for _, p := range payloads {
		d.walOffsets = append(d.walOffsets, off)
		off += wal.HeaderSize + int64(len(p))
	}
	d.reg.Histogram("wal.batch_size").Observe(float64(len(recs)))
	if d.gc != nil {
		d.noteAppendedLocked(len(recs))
		return commitToken{seq: d.seq, epoch: d.epoch, wait: true}, nil
	}
	fw := d.reg.Timer("wal.fsync_seconds").Start()
	err = d.w.Sync()
	fw.Stop()
	if err != nil {
		d.reg.Counter("wal.append_errors").Inc()
		return commitToken{}, fmt.Errorf("%w: fsync: %v", ErrDurability, err)
	}
	d.sinceSnapshot += len(recs)
	d.reg.Counter("wal.records").Add(int64(len(recs)))
	d.reg.Gauge("wal.size_bytes").Set(d.w.Size())
	d.notifyDurable()
	return commitToken{seq: d.seq, epoch: d.epoch}, nil
}

// noteAppendedLocked publishes the latest buffered sequence number to the
// group-commit layer and settles the bookkeeping that the inline-fsync
// path does after its sync. Called with the store mutex held.
func (d *Durability) noteAppendedLocked(n int) {
	d.sinceSnapshot += n
	d.reg.Counter("wal.records").Add(int64(n))
	d.reg.Gauge("wal.size_bytes").Set(d.w.Size())
	d.gc.noteAppended(d.seq)
}

// waitDurable redeems a commit token: it returns once the token's record
// is fsynced (nil) or a sync round covering it failed (ErrDurability).
// Must be called WITHOUT the store mutex — the whole point is that the
// fsync happens outside the lock, coalescing with concurrent appenders.
func (d *Durability) waitDurable(tok commitToken) error {
	if !tok.wait || d.gc == nil {
		return nil
	}
	err := d.gc.wait(tok.seq, func() error {
		fw := d.reg.Timer("wal.fsync_seconds").Start()
		defer fw.Stop()
		return d.w.Sync()
	}, func(records, waiters int) {
		d.reg.Histogram("wal.group_commit_records").Observe(float64(records))
		d.reg.Gauge("wal.group_commit_waiters").Set(int64(waiters))
	})
	if err != nil {
		d.reg.Counter("wal.append_errors").Inc()
		return fmt.Errorf("%w: group fsync: %v", ErrDurability, err)
	}
	d.notifyDurable()
	return nil
}

// maybeCompactLocked snapshots and resets the WAL once SnapshotEvery
// records have accumulated. Called with the store mutex held, after the
// journaled mutation has been applied (the snapshot must contain it). A
// failed compaction is operational, not data loss — every record is
// still in the WAL — so it is logged and retried an interval later.
func (d *Durability) maybeCompactLocked() {
	if d.snapshotEvery <= 0 || d.sinceSnapshot < d.snapshotEvery {
		return
	}
	if err := d.snapshotLocked(); err != nil {
		d.sinceSnapshot = 0
		d.reg.Counter("wal.snapshot_errors").Inc()
		d.logf("durability: snapshot failed (WAL keeps growing): %v", err)
	}
}

// Snapshot forces a compaction: the full campaign is written to a fresh
// snapshot and the WAL is emptied.
func (d *Durability) Snapshot() error {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if d.closed {
		return fmt.Errorf("%w: durability closed", ErrDurability)
	}
	return d.snapshotLocked()
}

// snapshotLocked writes the snapshot (temp file, fsync, atomic rename)
// and then resets the WAL. Crash windows: before the rename, the old
// snapshot + full WAL still recover everything; after the rename but
// before the reset, recovery skips the WAL records the snapshot already
// covers by sequence number.
func (d *Durability) snapshotLocked() error {
	sw := d.reg.Timer("wal.snapshot_seconds").Start()
	defer sw.Stop()
	var buf bytes.Buffer
	if err := d.store.datasetLocked().EncodeJSON(&buf); err != nil {
		return fmt.Errorf("encode dataset: %w", err)
	}
	fence, fenceVersion := d.store.fenceStateLocked()
	env, err := json.Marshal(snapshotFile{Version: snapshotVersion, Seq: d.seq, Epoch: d.epoch,
		Dataset: buf.Bytes(), Fence: fence, FenceVersion: fenceVersion})
	if err != nil {
		return fmt.Errorf("encode snapshot: %w", err)
	}
	tmp := filepath.Join(d.dir, snapshotTempName)
	f, err := d.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(env); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := d.fs.Rename(tmp, filepath.Join(d.dir, snapshotFileName)); err != nil {
		return err
	}
	if err := d.w.Reset(); err != nil {
		return fmt.Errorf("wal reset: %w", err)
	}
	d.sinceSnapshot = 0
	d.walSeq0 = d.seq + 1
	d.walOffsets = d.walOffsets[:0]
	if d.gc != nil {
		// The snapshot holds the full state through d.seq on stable
		// storage, so every record appended so far is durable — release
		// any group-commit waiters without an extra WAL fsync.
		d.gc.markDurable(d.seq)
	}
	d.reg.Counter("wal.snapshots").Inc()
	d.reg.Gauge("wal.size_bytes").Set(0)
	d.logf("durability: snapshot written (seq %d, epoch %d)", d.seq, d.epoch)
	d.notifyDurable()
	return nil
}

// Close writes a final snapshot and closes the WAL. The store keeps
// serving reads, but further mutations fail with ErrDurability. Safe to
// call more than once.
func (d *Durability) Close() error {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	snapErr := d.snapshotLocked()
	closeErr := d.w.Close()
	if snapErr != nil {
		// Not data loss: the WAL still holds everything the snapshot
		// missed, and the next open replays it.
		return fmt.Errorf("platform: close snapshot: %w", snapErr)
	}
	if closeErr != nil {
		return fmt.Errorf("platform: close wal: %w", closeErr)
	}
	return nil
}

// Abort closes the WAL without writing a final snapshot, simulating a
// hard crash (kill -9): recovery must come from the snapshot + WAL replay
// path, not from a clean shutdown. Further mutations fail with
// ErrDurability; the store keeps serving reads. Chaos tests use this to
// kill a shard under load. Safe to call more than once, and after Close
// it is a no-op.
func (d *Durability) Abort() error {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.w.Close()
}

// Dir returns the durable data directory.
func (d *Durability) Dir() string { return d.dir }

// WALSize returns the current WAL length in bytes (for tests and
// dashboards; the same value is exported as the wal.size_bytes gauge).
func (d *Durability) WALSize() int64 {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	return d.w.Size()
}

func (d *Durability) logf(format string, args ...any) {
	if d.log != nil {
		d.log.Printf(format, args...)
	}
}

// --- Replication hooks -------------------------------------------------
//
// The replication manager (repl.go) rides on the durability layer: the
// primary exports durable WAL frames by sequence range, followers append
// primary-assigned frames verbatim, and the epoch that scopes a replica
// group's history is persisted in the snapshot envelope.

// notifyDurable pokes the replication shippers after durable progress
// (inline fsync, settled group commit, or snapshot). Cheap and
// non-blocking; safe with or without the store mutex held.
func (d *Durability) notifyDurable() {
	if d.repl != nil {
		d.repl.pokeShippers()
	}
}

// durableSeq returns the highest sequence number known durable.
func (d *Durability) durableSeq() uint64 {
	if d.gc != nil {
		d.gc.mu.Lock()
		defer d.gc.mu.Unlock()
		return d.gc.synced
	}
	d.store.mu.RLock()
	defer d.store.mu.RUnlock()
	return d.seq
}

// durableSeqLocked is durableSeq with the store mutex already held.
func (d *Durability) durableSeqLocked() uint64 {
	if d.gc != nil {
		d.gc.mu.Lock()
		defer d.gc.mu.Unlock()
		return d.gc.synced
	}
	return d.seq
}

// Epoch returns the node's persisted replication epoch.
func (d *Durability) Epoch() uint64 {
	d.store.mu.RLock()
	defer d.store.mu.RUnlock()
	return d.epoch
}

// persistEpoch records a new replication epoch and makes it durable by
// writing a snapshot (epochs change only on promotion/reset, so the
// full-snapshot cost is paid rarely and buys an always-consistent
// {state, seq, epoch} triple on disk).
func (d *Durability) persistEpoch(epoch uint64) error {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if d.closed {
		return fmt.Errorf("%w: durability closed", ErrDurability)
	}
	if d.epoch == epoch {
		return nil
	}
	d.epoch = epoch
	return d.snapshotLocked()
}

// framesSince exports the durable WAL frames in (from, from+max],
// CRC-stamped for the wire. The bool result reports that from precedes
// the WAL's first frame (compacted into a snapshot): the caller must ship
// a snapshot reset instead of frames.
//
// The file read happens OUTSIDE the store mutex: the batch's byte range
// is captured under the lock (concurrent appends only ever extend the
// file past it), the lock is released for the read, and walSeq0 is
// rechecked afterwards — if a compaction (or snapshot adoption) reset the
// WAL mid-read, the possibly-garbage bytes are discarded and the bounds
// recomputed. Holding the lock across the read would stall every client
// write and read on the primary for the duration of each catch-up batch.
func (d *Durability) framesSince(from uint64, max int) ([]ReplFrame, bool, error) {
	for {
		d.store.mu.Lock()
		if d.closed {
			d.store.mu.Unlock()
			return nil, false, fmt.Errorf("%w: durability closed", ErrDurability)
		}
		durable := d.durableSeqLocked()
		if from >= durable {
			d.store.mu.Unlock()
			return nil, false, nil
		}
		if from+1 < d.walSeq0 {
			d.store.mu.Unlock()
			return nil, true, nil // the range was compacted away: snapshot time
		}
		hi := durable
		if max > 0 && hi-from > uint64(max) {
			hi = from + uint64(max)
		}
		startIdx := int(from + 1 - d.walSeq0)
		if startIdx >= len(d.walOffsets) {
			d.store.mu.Unlock()
			return nil, false, fmt.Errorf("%w: wal offset index missing seq %d", ErrDurability, from+1)
		}
		start := d.walOffsets[startIdx]
		// Frame hi's end: the next frame's offset, or — when hi is the
		// last appended frame — the file size (appends happen under the
		// store mutex, so nothing is mid-write past it right now).
		end := d.w.Size()
		if endIdx := int(hi + 1 - d.walSeq0); endIdx < len(d.walOffsets) {
			end = d.walOffsets[endIdx]
		}
		seq0 := d.walSeq0
		d.store.mu.Unlock()

		res, err := wal.ReadRange(d.fs, filepath.Join(d.dir, walFileName), start, end)
		if err != nil {
			return nil, false, fmt.Errorf("%w: export frames: %v", ErrDurability, err)
		}

		d.store.mu.Lock()
		moved := d.walSeq0 != seq0
		d.store.mu.Unlock()
		if moved {
			continue // the WAL was reset mid-read; recompute the bounds
		}
		n := int(hi - from)
		if len(res.Records) < n {
			n = len(res.Records)
		}
		frames := make([]ReplFrame, n)
		for i := 0; i < n; i++ {
			frames[i] = ReplFrame{
				Seq:     from + 1 + uint64(i),
				CRC:     crc32.ChecksumIEEE(res.Records[i]),
				Payload: res.Records[i],
			}
		}
		return frames, false, nil
	}
}

// adoptSnapshotLocked rewinds the durability layer onto a shipped
// snapshot's {seq, epoch} and persists the adopted state (the caller has
// already replaced the in-memory store). The group-commit marks are
// forced to the new seq — which may be LOWER than before on a diverged
// rejoiner — so the follower's durable high-water mark tracks the adopted
// history, not the abandoned one. Caller holds the store mutex.
func (d *Durability) adoptSnapshotLocked(seq, epoch uint64) error {
	d.seq = seq
	d.epoch = epoch
	if d.gc != nil {
		d.gc.mu.Lock()
		d.gc.synced = seq
		d.gc.appended = seq
		d.gc.cond.Broadcast()
		d.gc.mu.Unlock()
	}
	return d.snapshotLocked()
}

// appendReplicatedLocked journals primary-assigned frames on a follower:
// the payloads are written verbatim (keeping the follower's WAL
// byte-identical to the primary's for the shipped range) and fsynced
// before the method returns, because the follower's ack is what lets a
// semi-sync primary acknowledge its client. Caller holds the store mutex
// and has verified CRCs and seq contiguity from d.seq+1.
func (d *Durability) appendReplicatedLocked(frames []ReplFrame) error {
	if d.closed {
		return fmt.Errorf("%w: durability closed", ErrDurability)
	}
	if len(frames) == 0 {
		return nil
	}
	payloads := make([][]byte, len(frames))
	offs := make([]int64, len(frames))
	off := d.w.Size()
	for i, f := range frames {
		payloads[i] = f.Payload
		offs[i] = off
		off += wal.HeaderSize + int64(len(f.Payload))
	}
	sw := d.reg.Timer("wal.append_seconds").Start()
	err := d.w.AppendBatch(payloads)
	sw.Stop()
	if err != nil {
		d.reg.Counter("wal.append_errors").Inc()
		return fmt.Errorf("%w: replicated append: %v", ErrDurability, err)
	}
	fw := d.reg.Timer("wal.fsync_seconds").Start()
	err = d.w.Sync()
	fw.Stop()
	if err != nil {
		d.reg.Counter("wal.append_errors").Inc()
		return fmt.Errorf("%w: replicated fsync: %v", ErrDurability, err)
	}
	d.seq = frames[len(frames)-1].Seq
	d.walOffsets = append(d.walOffsets, offs...)
	d.sinceSnapshot += len(frames)
	d.reg.Counter("wal.records").Add(int64(len(frames)))
	d.reg.Gauge("wal.size_bytes").Set(d.w.Size())
	if d.gc != nil {
		d.gc.markDurable(d.seq)
	}
	return nil
}
