package platform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/obs"
	"sybiltd/internal/wal"
)

// Durable file layout inside a data directory.
const (
	walFileName      = "wal.log"
	snapshotFileName = "snapshot.json"
	snapshotTempName = "snapshot.json.tmp"
)

// snapshotVersion gates the snapshot envelope schema.
const snapshotVersion = 1

// WAL operation tags carried in walRecord.Op.
const (
	opSubmit      = "submit"
	opFingerprint = "fingerprint"
)

// walRecord is one durable mutation, JSON-encoded as the payload of a WAL
// frame. Account registration is implicit: replaying an account's first
// record re-registers it, in the same order the WAL was written.
type walRecord struct {
	Seq      uint64    `json:"seq"`
	Op       string    `json:"op"`
	Account  string    `json:"account"`
	Task     int       `json:"task,omitempty"`
	Value    float64   `json:"value,omitempty"`
	Time     time.Time `json:"time"`
	Features []float64 `json:"features,omitempty"`
}

// snapshotFile is the envelope written to snapshot.json: the campaign in
// the stable mcs JSON schema plus the WAL sequence number it covers, so
// recovery can skip WAL records the snapshot already contains (the
// crash-between-snapshot-and-WAL-reset window).
type snapshotFile struct {
	Version int             `json:"version"`
	Seq     uint64          `json:"seq"`
	Dataset json.RawMessage `json:"dataset"`
}

// DurableOptions tunes OpenDurable.
type DurableOptions struct {
	// FS is the filesystem seam; nil means the real OS filesystem. Tests
	// inject a wal.FaultFS here to script crashes.
	FS wal.FS
	// SnapshotEvery compacts the WAL into a fresh snapshot after this
	// many appended records; 0 snapshots only at Close.
	SnapshotEvery int
	// Registry receives WAL metrics; nil means obs.Default().
	Registry *obs.Registry
	// Logger receives recovery and snapshot notices; nil disables them.
	Logger *log.Logger
}

// RecoveryStats summarizes what OpenDurable reconstructed from disk.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot file was found.
	SnapshotLoaded bool
	// SnapshotSeq is the WAL sequence number the snapshot covers.
	SnapshotSeq uint64
	// WALRecords is the number of valid records in the WAL.
	WALRecords int
	// RecordsReplayed is how many WAL records changed recovered state.
	RecordsReplayed int
	// RecordsSkipped counts stale records (already covered by the
	// snapshot) and records the replay validator rejected.
	RecordsSkipped int
	// BytesTruncated is the torn/corrupt tail cut off the WAL.
	BytesTruncated int64
	// CorruptReason explains the truncation ("" when the tail was clean).
	CorruptReason string
}

// Durability journals a Store's mutations into a write-ahead log and
// periodically compacts the log into snapshots. All methods that touch
// the WAL run under the owning store's mutex: appendLocked and
// maybeCompactLocked are called by the store with the lock held, and the
// public Snapshot/Close take it themselves.
type Durability struct {
	dir           string
	fs            wal.FS
	w             *wal.Writer
	store         *Store
	seq           uint64 // sequence number of the last frame written
	sinceSnapshot int
	snapshotEvery int
	reg           *obs.Registry
	log           *log.Logger
	closed        bool
}

// OpenDurable opens (or creates) the durable platform state in dir and
// returns the recovered store with its attached durability layer. The
// recovery sequence is: load snapshot.json if present, then replay the
// WAL tail on top, truncating at the first torn or corrupt record — a
// damaged directory recovers to the longest valid prefix and serves,
// rather than crash-looping. tasks is used only when no snapshot exists
// (a snapshot carries its own task list).
func OpenDurable(dir string, tasks []mcs.Task, opts DurableOptions) (*Store, *Durability, RecoveryStats, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = wal.OS()
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	var stats RecoveryStats
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, stats, fmt.Errorf("platform: durable dir: %w", err)
	}
	// A leftover temp file is a crash mid-snapshot-write; the durable
	// snapshot is still the previous one, so discard the partial file.
	_ = fsys.Remove(filepath.Join(dir, snapshotTempName))

	store := NewStore(tasks)
	var seq uint64
	snapPath := filepath.Join(dir, snapshotFileName)
	if _, err := fsys.Stat(snapPath); err == nil {
		snap, ds, err := readSnapshot(fsys, snapPath)
		if err != nil {
			return nil, nil, stats, fmt.Errorf("platform: snapshot %s: %w", snapPath, err)
		}
		store = storeFromDataset(ds)
		seq = snap.Seq
		stats.SnapshotLoaded = true
		stats.SnapshotSeq = snap.Seq
	}

	w, scan, err := wal.Open(fsys, filepath.Join(dir, walFileName))
	if err != nil {
		return nil, nil, stats, fmt.Errorf("platform: %w", err)
	}
	stats.WALRecords = len(scan.Records)
	stats.BytesTruncated = scan.Truncated()
	if scan.Corrupt != nil {
		stats.CorruptReason = scan.Corrupt.Error()
	}

	for i, payload := range scan.Records {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// CRC-valid but undecodable: same treatment as a corrupt
			// tail — keep the prefix, cut the rest.
			if terr := w.TruncateTo(scan.Offsets[i]); terr != nil {
				_ = w.Close()
				return nil, nil, stats, fmt.Errorf("platform: wal repair: %w", terr)
			}
			stats.BytesTruncated += scan.Valid - scan.Offsets[i]
			stats.WALRecords = i
			stats.CorruptReason = fmt.Sprintf("record %d undecodable: %v", i, err)
			break
		}
		if rec.Seq <= seq {
			stats.RecordsSkipped++ // snapshot already covers it
			continue
		}
		if store.replayRecord(rec) {
			stats.RecordsReplayed++
		} else {
			stats.RecordsSkipped++
		}
		seq = rec.Seq
	}

	d := &Durability{
		dir:           dir,
		fs:            fsys,
		w:             w,
		store:         store,
		seq:           seq,
		snapshotEvery: opts.SnapshotEvery,
		reg:           reg,
		log:           opts.Logger,
	}
	store.journal = d
	reg.Gauge("wal.size_bytes").Set(w.Size())
	reg.Gauge("wal.recovery_records_replayed").Set(int64(stats.RecordsReplayed))
	reg.Gauge("wal.recovery_bytes_truncated").Set(stats.BytesTruncated)
	d.logf("durability: recovered %s: snapshot=%v (seq %d), wal records=%d replayed=%d skipped=%d truncated=%d bytes",
		dir, stats.SnapshotLoaded, stats.SnapshotSeq, stats.WALRecords,
		stats.RecordsReplayed, stats.RecordsSkipped, stats.BytesTruncated)
	if stats.CorruptReason != "" {
		d.logf("durability: WAL tail repaired: %s", stats.CorruptReason)
	}
	return store, d, stats, nil
}

// readSnapshot decodes the snapshot envelope and its embedded dataset.
func readSnapshot(fsys wal.FS, path string) (snapshotFile, *mcs.Dataset, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return snapshotFile{}, nil, err
	}
	defer f.Close()
	var snap snapshotFile
	if err := json.NewDecoder(f).Decode(&snap); err != nil {
		return snapshotFile{}, nil, fmt.Errorf("decode: %w", err)
	}
	if snap.Version != snapshotVersion {
		return snapshotFile{}, nil, fmt.Errorf("unsupported snapshot version %d", snap.Version)
	}
	ds, err := mcs.DecodeJSON(bytes.NewReader(snap.Dataset))
	if err != nil {
		return snapshotFile{}, nil, err
	}
	return snap, ds, nil
}

// storeFromDataset rebuilds in-memory store state from a snapshot
// dataset, preserving account registration order.
func storeFromDataset(ds *mcs.Dataset) *Store {
	s := NewStore(ds.Tasks)
	for i := range ds.Accounts {
		acct := &ds.Accounts[i]
		st := s.registerAccountLocked(acct.ID) // no lock needed: store not shared yet
		for _, o := range acct.Observations {
			st.observations[o.Task] = o
		}
		if len(acct.Fingerprint) > 0 {
			st.fingerprint = append([]float64(nil), acct.Fingerprint...)
		}
	}
	return s
}

// replayRecord applies one recovered WAL record. It tolerates records the
// current state already contains — a crash between the snapshot rename
// and the WAL reset leaves both holding the same operations — and
// silently drops records that fail validation rather than refusing to
// start. Returns whether state changed.
func (s *Store) replayRecord(rec walRecord) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch rec.Op {
	case opSubmit:
		if rec.Account == "" || rec.Task < 0 || rec.Task >= len(s.tasks) || !isFinite(rec.Value) {
			return false
		}
		st := s.accounts[rec.Account]
		if st == nil {
			st = s.registerAccountLocked(rec.Account)
		} else if _, dup := st.observations[rec.Task]; dup {
			return false
		}
		st.observations[rec.Task] = mcs.Observation{Task: rec.Task, Value: rec.Value, Time: rec.Time}
		return true
	case opFingerprint:
		if rec.Account == "" || len(rec.Features) == 0 {
			return false
		}
		for _, f := range rec.Features {
			if !isFinite(f) {
				return false
			}
		}
		st := s.accounts[rec.Account]
		if st == nil {
			st = s.registerAccountLocked(rec.Account)
		}
		st.fingerprint = append([]float64(nil), rec.Features...)
		return true
	}
	return false
}

// appendLocked journals one mutation. Called by the store with its mutex
// held and the record fully validated, before the mutation is applied:
// the frame is written and fsynced before the caller may acknowledge, so
// an acknowledged operation is a durable operation. On error the store
// does not apply the mutation.
func (d *Durability) appendLocked(rec walRecord) error {
	if d.closed {
		return fmt.Errorf("%w: durability closed", ErrDurability)
	}
	rec.Seq = d.seq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("%w: encode: %v", ErrDurability, err)
	}
	sw := d.reg.Timer("wal.append_seconds").Start()
	err = d.w.Append(payload)
	sw.Stop()
	if err != nil {
		d.reg.Counter("wal.append_errors").Inc()
		return fmt.Errorf("%w: append: %v", ErrDurability, err)
	}
	// The frame is on the log from here (even if the fsync below fails it
	// may survive), so the sequence number is consumed either way.
	d.seq++
	fw := d.reg.Timer("wal.fsync_seconds").Start()
	err = d.w.Sync()
	fw.Stop()
	if err != nil {
		d.reg.Counter("wal.append_errors").Inc()
		return fmt.Errorf("%w: fsync: %v", ErrDurability, err)
	}
	d.sinceSnapshot++
	d.reg.Counter("wal.records").Inc()
	d.reg.Gauge("wal.size_bytes").Set(d.w.Size())
	return nil
}

// maybeCompactLocked snapshots and resets the WAL once SnapshotEvery
// records have accumulated. Called with the store mutex held, after the
// journaled mutation has been applied (the snapshot must contain it). A
// failed compaction is operational, not data loss — every record is
// still in the WAL — so it is logged and retried an interval later.
func (d *Durability) maybeCompactLocked() {
	if d.snapshotEvery <= 0 || d.sinceSnapshot < d.snapshotEvery {
		return
	}
	if err := d.snapshotLocked(); err != nil {
		d.sinceSnapshot = 0
		d.reg.Counter("wal.snapshot_errors").Inc()
		d.logf("durability: snapshot failed (WAL keeps growing): %v", err)
	}
}

// Snapshot forces a compaction: the full campaign is written to a fresh
// snapshot and the WAL is emptied.
func (d *Durability) Snapshot() error {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if d.closed {
		return fmt.Errorf("%w: durability closed", ErrDurability)
	}
	return d.snapshotLocked()
}

// snapshotLocked writes the snapshot (temp file, fsync, atomic rename)
// and then resets the WAL. Crash windows: before the rename, the old
// snapshot + full WAL still recover everything; after the rename but
// before the reset, recovery skips the WAL records the snapshot already
// covers by sequence number.
func (d *Durability) snapshotLocked() error {
	sw := d.reg.Timer("wal.snapshot_seconds").Start()
	defer sw.Stop()
	var buf bytes.Buffer
	if err := d.store.datasetLocked().EncodeJSON(&buf); err != nil {
		return fmt.Errorf("encode dataset: %w", err)
	}
	env, err := json.Marshal(snapshotFile{Version: snapshotVersion, Seq: d.seq, Dataset: buf.Bytes()})
	if err != nil {
		return fmt.Errorf("encode snapshot: %w", err)
	}
	tmp := filepath.Join(d.dir, snapshotTempName)
	f, err := d.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(env); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := d.fs.Rename(tmp, filepath.Join(d.dir, snapshotFileName)); err != nil {
		return err
	}
	if err := d.w.Reset(); err != nil {
		return fmt.Errorf("wal reset: %w", err)
	}
	d.sinceSnapshot = 0
	d.reg.Counter("wal.snapshots").Inc()
	d.reg.Gauge("wal.size_bytes").Set(0)
	d.logf("durability: snapshot written (seq %d)", d.seq)
	return nil
}

// Close writes a final snapshot and closes the WAL. The store keeps
// serving reads, but further mutations fail with ErrDurability. Safe to
// call more than once.
func (d *Durability) Close() error {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	snapErr := d.snapshotLocked()
	closeErr := d.w.Close()
	if snapErr != nil {
		// Not data loss: the WAL still holds everything the snapshot
		// missed, and the next open replays it.
		return fmt.Errorf("platform: close snapshot: %w", snapErr)
	}
	if closeErr != nil {
		return fmt.Errorf("platform: close wal: %w", closeErr)
	}
	return nil
}

// Dir returns the durable data directory.
func (d *Durability) Dir() string { return d.dir }

// WALSize returns the current WAL length in bytes (for tests and
// dashboards; the same value is exported as the wal.size_bytes gauge).
func (d *Durability) WALSize() int64 {
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	return d.w.Size()
}

func (d *Durability) logf(format string, args ...any) {
	if d.log != nil {
		d.log.Printf(format, args...)
	}
}
