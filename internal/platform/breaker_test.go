package platform

import (
	"errors"
	"testing"
	"time"
)

// testClock is an injectable clock for breaker tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *testClock) {
	clk := &testClock{t: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)}
	b := newBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("attempt %d refused while closed: %v", i, err)
		}
		b.record(false)
	}
	if b.currentState() != BreakerClosed {
		t.Fatalf("state = %v after 2/3 failures", b.currentState())
	}
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.record(false) // third consecutive failure
	if b.currentState() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.currentState())
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 10; i++ {
		_ = b.allow()
		b.record(false)
		_ = b.allow()
		b.record(true) // success between failures: never 3 in a row
	}
	if b.currentState() != BreakerClosed {
		t.Fatalf("state = %v, want closed — successes must reset the count", b.currentState())
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	_ = b.allow()
	b.record(false) // opens
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("must refuse during cooldown")
	}
	clk.advance(time.Second)
	// First caller after the cooldown becomes the probe...
	if err := b.allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	if b.currentState() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.currentState())
	}
	// ...and everyone else is still refused while the probe is in flight.
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe success closes the circuit.
	b.record(true)
	if b.currentState() != BreakerClosed {
		t.Fatalf("state = %v after successful probe", b.currentState())
	}
	if err := b.allow(); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	_ = b.allow()
	b.record(false) // opens
	clk.advance(time.Second)
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.record(false) // probe fails: back to open, cooldown restarts
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("reopened breaker admitted a call")
	}
	clk.advance(999 * time.Millisecond)
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("cooldown did not restart after the failed probe")
	}
	clk.advance(time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe refused after full cooldown: %v", err)
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	} {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", st, got, want)
		}
	}
}

func TestClientWithoutBreakerReportsClosed(t *testing.T) {
	c := NewClientWithConfig("http://localhost:0", ClientConfig{})
	if got := c.BreakerState(); got != BreakerClosed {
		t.Fatalf("state = %v", got)
	}
}
