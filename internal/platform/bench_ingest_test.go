package platform

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/obs"
)

// BenchmarkIngest measures acknowledged durable submits per second under
// 32 concurrent submitters, comparing the three ingestion shapes:
//
//   - per-record-fsync: the pre-group-commit baseline (CommitLinger 0) —
//     every ack pays its own fsync, serialized behind the store lock.
//   - group-commit: concurrent single submits coalesced into shared
//     fsyncs (2ms linger, early wake at 8 pending).
//   - batched-submit: SubmitBatch envelopes of 16 — one WAL write and one
//     fsync per envelope even without group commit.
//
// Run via `make bench-ingest`; the acceptance bar for the group-commit
// path is >= 3x the per-record baseline's acked-submits/sec.
func BenchmarkIngest(b *testing.B) {
	const workers = 32

	b.Run("per-record-fsync", func(b *testing.B) {
		benchConcurrentSubmits(b, workers, DurableOptions{})
	})
	b.Run("group-commit", func(b *testing.B) {
		benchConcurrentSubmits(b, workers, DurableOptions{
			CommitLinger:   2 * time.Millisecond,
			CommitMaxBatch: 8,
		})
	})
	b.Run("batched-submit-16", func(b *testing.B) {
		benchBatchedSubmits(b, workers, 16, DurableOptions{})
	})
}

// BenchmarkIngestReplicated measures the ack-mode cost of replication: a
// primary shipping its WAL over real HTTP to one follower, under the same
// 32-submitter load as BenchmarkIngest, comparing:
//
//   - async: acks return after the primary's own group-commit fsync; the
//     follower catches up in the background, so the overhead is just the
//     shipper competing for the WAL.
//   - semi-sync: every ack also waits for the follower to confirm the
//     record durable, putting a ship round-trip plus a remote fsync on
//     the ack path.
//
// Run via `make bench-ingest` alongside the unreplicated shapes.
func BenchmarkIngestReplicated(b *testing.B) {
	const workers = 32

	b.Run("async", func(b *testing.B) {
		benchReplicatedSubmits(b, workers, AckAsync)
	})
	b.Run("semi-sync", func(b *testing.B) {
		benchReplicatedSubmits(b, workers, AckSemiSync)
	})
}

// benchReplicatedSubmits drives b.N single submits against a primary
// replicating to one HTTP follower in the given ack mode. Both replicas
// run the group-commit ingestion shape so the comparison isolates the
// replication overhead.
func benchReplicatedSubmits(b *testing.B, workers int, mode AckMode) {
	opts := DurableOptions{CommitLinger: 2 * time.Millisecond, CommitMaxBatch: 8}
	fstore, fd, _, err := OpenDurable(b.TempDir(), testTasks(1), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer fd.Close()
	frepl := NewReplication(fstore, fd, ReplicationOptions{
		FollowerOf: "http://primary.invalid",
		Registry:   obs.NewRegistry(),
	})
	defer frepl.Close()
	fsrv := httptest.NewServer(NewServerWithOptions(fstore, ServerOptions{
		Registry:     obs.NewRegistry(),
		Replication:  frepl,
		DisableWatch: true,
	}))
	defer fsrv.Close()

	store, d, _, err := OpenDurable(b.TempDir(), testTasks(1), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	repl := NewReplication(store, d, ReplicationOptions{
		Mode:         mode,
		Followers:    []string{fsrv.URL},
		ShipInterval: time.Millisecond,
		Registry:     obs.NewRegistry(),
	})
	defer repl.Close()

	var wg sync.WaitGroup
	var idx sync.Mutex
	next := 0
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx.Lock()
				i := next
				next++
				idx.Unlock()
				if i >= b.N {
					return
				}
				account := fmt.Sprintf("w%02d-%06d", w, i)
				if err := store.Submit(context.Background(), account, 0, -80, at(0)); err != nil {
					b.Errorf("submit %s: %v", account, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "acked-submits/sec")
}

// benchConcurrentSubmits drives b.N single submits across `workers`
// goroutines against a fresh durable store. Every (account, task) pair is
// unique so the duplicate guard never fires.
func benchConcurrentSubmits(b *testing.B, workers int, opts DurableOptions) {
	store, d, _, err := OpenDurable(b.TempDir(), testTasks(1), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()

	var wg sync.WaitGroup
	var idx sync.Mutex
	next := 0
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx.Lock()
				i := next
				next++
				idx.Unlock()
				if i >= b.N {
					return
				}
				account := fmt.Sprintf("w%02d-%06d", w, i)
				if err := store.Submit(context.Background(), account, 0, -80, at(0)); err != nil {
					b.Errorf("submit %s: %v", account, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "acked-submits/sec")
}

// benchBatchedSubmits drives b.N submits in SubmitBatch envelopes of
// batchSize, spread across `workers` goroutines.
func benchBatchedSubmits(b *testing.B, workers, batchSize int, opts DurableOptions) {
	store, d, _, err := OpenDurable(b.TempDir(), testTasks(1), opts)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()

	var wg sync.WaitGroup
	var idx sync.Mutex
	next := 0
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx.Lock()
				start := next
				next += batchSize
				idx.Unlock()
				if start >= b.N {
					return
				}
				end := start + batchSize
				if end > b.N {
					end = b.N
				}
				items := make([]BatchSubmission, 0, end-start)
				for i := start; i < end; i++ {
					items = append(items, BatchSubmission{
						Account: fmt.Sprintf("w%02d-%06d", w, i), Task: 0, Value: -80, At: at(0),
					})
				}
				for i, e := range store.SubmitBatch(context.Background(), items) {
					if e != nil {
						b.Errorf("batch item %d: %v", start+i, e)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "acked-submits/sec")
}
