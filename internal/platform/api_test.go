package platform

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sybiltd/internal/obs"
)

// postRaw sends a raw JSON body and returns the status plus the decoded
// error body (zero-valued when the response is a success).
func postRaw(t *testing.T, srv *httptest.Server, path, body string) (int, ErrorResponse) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var errBody ErrorResponse
	if resp.StatusCode >= 400 {
		if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
			t.Fatalf("%s: error body is not JSON: %v", path, err)
		}
	}
	return resp.StatusCode, errBody
}

func TestErrorBodiesCarryStableCodes(t *testing.T) {
	store := NewLocalStore(testTasks(1))
	store.SetMaxAccounts(1)
	srv := httptest.NewServer(NewServer(store, nil))
	t.Cleanup(srv.Close)

	// Seed one account so the cap case below trips.
	status, _ := postRaw(t, srv, "/v1/submissions", `{"account":"a","task":0,"value":1}`)
	if status != http.StatusCreated {
		t.Fatalf("seed submission status = %d", status)
	}

	cases := []struct {
		name     string
		path     string
		body     string
		status   int
		code     string
		sentinel error
	}{
		{
			name:   "malformed JSON",
			path:   "/v1/submissions",
			body:   `{not json`,
			status: http.StatusBadRequest,
			code:   CodeMalformedRequest, sentinel: ErrMalformedRequest,
		},
		{
			name:   "unknown field",
			path:   "/v1/submissions",
			body:   `{"account":"a","task":0,"value":1,"bogus":true}`,
			status: http.StatusBadRequest,
			code:   CodeMalformedRequest, sentinel: ErrMalformedRequest,
		},
		{
			// JSON cannot carry NaN/Inf literals, so a non-finite value
			// arrives as an out-of-range float and must die in decode.
			name:   "out-of-range number",
			path:   "/v1/submissions",
			body:   `{"account":"a","task":0,"value":1e999}`,
			status: http.StatusBadRequest,
			code:   CodeMalformedRequest, sentinel: ErrMalformedRequest,
		},
		{
			name:   "non-finite fingerprint feature",
			path:   "/v1/fingerprints",
			body:   `{"account":"a","features":[1,2,1e999]}`,
			status: http.StatusBadRequest,
			code:   CodeMalformedRequest, sentinel: ErrMalformedRequest,
		},
		{
			name:   "unknown aggregation method",
			path:   "/v1/aggregate",
			body:   `{"method":"quantum"}`,
			status: http.StatusBadRequest,
			code:   CodeUnknownAggregation, sentinel: ErrUnknownAggregation,
		},
		{
			name:   "fingerprint with both raw capture and features",
			path:   "/v1/fingerprints",
			body:   `{"account":"a","sample_rate":100,"accel_x":[1],"accel_y":[1],"accel_z":[1],"gyro_x":[1],"gyro_y":[1],"gyro_z":[1],"features":[1,2]}`,
			status: http.StatusBadRequest,
			code:   CodeBadFingerprint, sentinel: ErrBadFingerprint,
		},
		{
			name:   "unknown task",
			path:   "/v1/submissions",
			body:   `{"account":"a","task":9,"value":1}`,
			status: http.StatusBadRequest,
			code:   CodeUnknownTask, sentinel: ErrUnknownTask,
		},
		{
			name:   "empty account",
			path:   "/v1/submissions",
			body:   `{"account":"","task":0,"value":1}`,
			status: http.StatusBadRequest,
			code:   CodeEmptyAccount, sentinel: ErrEmptyAccount,
		},
		{
			name:   "duplicate report",
			path:   "/v1/submissions",
			body:   `{"account":"a","task":0,"value":2}`,
			status: http.StatusConflict,
			code:   CodeDuplicateReport, sentinel: ErrDuplicateReport,
		},
		{
			name:   "account cap reached",
			path:   "/v1/submissions",
			body:   `{"account":"overflow","task":0,"value":1}`,
			status: http.StatusTooManyRequests,
			code:   CodeAccountCapReached, sentinel: ErrTooManyAccounts,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postRaw(t, srv, tc.path, tc.body)
			if status != tc.status {
				t.Errorf("status = %d, want %d", status, tc.status)
			}
			if body.Code != tc.code {
				t.Errorf("code = %q, want %q", body.Code, tc.code)
			}
			if body.Error == "" {
				t.Error("error message missing")
			}
			// The client must surface the same failure as the typed
			// sentinel — the whole point of the code contract.
			if !errors.Is(&APIError{Code: body.Code, Status: status}, tc.sentinel) {
				t.Errorf("code %q does not unwrap to %v", body.Code, tc.sentinel)
			}
		})
	}
}

func TestClientSurfacesTypedErrors(t *testing.T) {
	store := NewLocalStore(testTasks(1))
	store.SetMaxAccounts(1)
	srv := httptest.NewServer(NewServer(store, nil))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, WithHTTPClient(srv.Client()))
	ctx := context.Background()

	if _, err := client.Aggregate(ctx, "quantum"); !errors.Is(err, ErrUnknownAggregation) {
		t.Errorf("unknown aggregation over HTTP: %v", err)
	}
	if err := client.Submit(ctx, SubmissionRequest{Account: "a", Task: 0, Value: 1, Time: at(0)}); err != nil {
		t.Fatal(err)
	}
	if err := client.Submit(ctx, SubmissionRequest{Account: "b", Task: 0, Value: 1, Time: at(1)}); !errors.Is(err, ErrTooManyAccounts) {
		t.Errorf("account cap over HTTP: %v", err)
	}
	err := client.Submit(ctx, SubmissionRequest{Account: "a", Task: 0, Value: 2, Time: at(2)})
	if !errors.Is(err, ErrDuplicateReport) {
		t.Errorf("duplicate over HTTP: %v", err)
	}
	// The structured error is also reachable for status/code inspection.
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v does not expose *APIError", err)
	}
	if apiErr.Status != http.StatusConflict || apiErr.Code != CodeDuplicateReport {
		t.Errorf("APIError = %+v", apiErr)
	}
}

func TestZeroEstimateSurvivesTheWire(t *testing.T) {
	// A legitimate estimate of exactly 0 must round-trip: the old
	// `omitempty` on TruthDTO.Value dropped it, making 0 indistinguishable
	// from "no data" on the client.
	raw, err := json.Marshal(TruthDTO{Task: 3, Value: 0, Estimated: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"value":0`) {
		t.Fatalf("marshalled TruthDTO omits zero value: %s", raw)
	}

	_, client := newTestServer(t, 1)
	ctx := context.Background()
	// Reports averaging exactly 0.
	for i, v := range []float64{-5, 0, 5} {
		if err := client.Submit(ctx, SubmissionRequest{Account: string(rune('a' + i)), Task: 0, Value: v, Time: at(i)}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := client.Aggregate(ctx, "mean")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truths[0].Estimated {
		t.Fatal("zero-valued estimate lost its Estimated flag")
	}
	if resp.Truths[0].Value != 0 {
		t.Errorf("estimate = %v, want exactly 0", resp.Truths[0].Value)
	}
}

func TestClientRetriesTransientFailures(t *testing.T) {
	// Flaky upstream: two 500s, then success. The client must absorb the
	// transient failures within its retry budget.
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeInternal, Error: "transient"})
			return
		}
		_ = json.NewEncoder(w).Encode([]TaskDTO{{ID: 0, Name: "T1"}})
	}))
	t.Cleanup(srv.Close)

	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:     srv.Client(),
		MaxRetries:     3,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	})
	tasks, err := client.Tasks(context.Background())
	if err != nil {
		t.Fatalf("flaky server not absorbed: %v", err)
	}
	if len(tasks) != 1 {
		t.Fatalf("tasks = %+v", tasks)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

func TestClientGivesUpAfterRetryBudget(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)

	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:     srv.Client(),
		MaxRetries:     2,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
	})
	_, err := client.Tasks(context.Background())
	if err == nil {
		t.Fatal("persistent 503 must eventually fail")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("err = %v", err)
	}
	if got := calls.Load(); got != 3 { // initial + 2 retries
		t.Errorf("server saw %d calls, want 3", got)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	// 4xx means the request is wrong; retrying would just repeat the
	// rejection (and double-submit reports under ambiguity).
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Code: CodeUnknownTask, Error: "nope"})
	}))
	t.Cleanup(srv.Close)

	client := NewClientWithConfig(srv.URL, ClientConfig{
		HTTPClient:     srv.Client(),
		MaxRetries:     5,
		RetryBaseDelay: time.Millisecond,
	})
	err := client.Submit(context.Background(), SubmissionRequest{Account: "a", Task: 9, Value: 1})
	if !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d calls, want exactly 1 (no retries on 4xx)", got)
	}
}

func TestClientRetriesConnectionErrors(t *testing.T) {
	// A server that is down entirely: the client should attempt
	// MaxRetries+1 times before giving up. Use a port from a closed
	// listener so the dial fails fast.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()

	client := NewClientWithConfig(url, ClientConfig{
		MaxRetries:     1,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
	})
	start := time.Now()
	_, err := client.Tasks(context.Background())
	if err == nil {
		t.Fatal("dead server must error")
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("retry loop took %v, backoff not bounded", time.Since(start))
	}

	// A cancelled context aborts immediately instead of burning retries.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.Tasks(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx err = %v", err)
	}
}

func TestMetricsEndpointsAfterTraffic(t *testing.T) {
	// A hermetic registry so the HTTP counters assert exact values; the
	// framework/library metrics go to obs.Default() and are checked as
	// before/after deltas since other tests share that registry.
	reg := obs.NewRegistry()
	store := NewLocalStore(testTasks(2))
	srv := httptest.NewServer(NewServerWithRegistry(store, nil, reg))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, WithHTTPClient(srv.Client()))
	ctx := context.Background()

	loopSecondsBefore := obs.Default().Histogram("framework.truth_loop_seconds").Snapshot().Count
	crhRunsBefore := obs.Default().Counter("truth.crh.runs").Value()

	for i, v := range []float64{-70, -71, -69} {
		if err := client.Submit(ctx, SubmissionRequest{Account: string(rune('a' + i)), Task: 0, Value: v, Time: at(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Aggregate(ctx, "td-ts"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Aggregate(ctx, "crh"); err != nil {
		t.Fatal(err)
	}

	// JSON snapshot via the typed client.
	snap, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["http.post_v1_submissions.requests"]; got != 3 {
		t.Errorf("submissions counter = %d, want 3", got)
	}
	if got := snap.Counters["http.post_v1_aggregate.requests"]; got != 2 {
		t.Errorf("aggregate counter = %d, want 2", got)
	}
	lat, ok := snap.Histograms["http.post_v1_aggregate.latency_seconds"]
	if !ok || lat.Count != 2 || lat.Sum <= 0 {
		t.Errorf("aggregate latency histogram = %+v, ok=%v", lat, ok)
	}

	// Library instrumentation reached the default registry.
	if got := obs.Default().Histogram("framework.truth_loop_seconds").Snapshot().Count; got <= loopSecondsBefore {
		t.Errorf("framework.truth_loop_seconds count %d did not grow past %d", got, loopSecondsBefore)
	}
	if got := obs.Default().Counter("truth.crh.runs").Value(); got <= crhRunsBefore {
		t.Errorf("truth.crh.runs %d did not grow past %d", got, crhRunsBefore)
	}

	// Prometheus text endpoint.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"http_post_v1_submissions_requests 3",
		"http_post_v1_aggregate_requests 2",
		`http_post_v1_aggregate_latency_seconds{quantile="0.5"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Error responses land in the 4xx counter.
	if _, err := client.Aggregate(ctx, "quantum"); err == nil {
		t.Fatal("expected error")
	}
	if got := reg.Counter("http.post_v1_aggregate.errors_4xx").Value(); got != 1 {
		t.Errorf("errors_4xx = %d, want 1", got)
	}
}

func TestMetricsJSONIsWellFormed(t *testing.T) {
	// Idle routes have empty histograms; the snapshot must still be
	// valid JSON (no NaN quantiles).
	reg := obs.NewRegistry()
	store := NewLocalStore(testTasks(1))
	srv := httptest.NewServer(NewServerWithRegistry(store, nil, reg))
	t.Cleanup(srv.Close)

	resp, err := srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
}

func ExampleClient_Metrics() {
	store := NewLocalStore(testTasks(1))
	srv := httptest.NewServer(NewServerWithRegistry(store, nil, obs.NewRegistry()))
	defer srv.Close()
	client := NewClient(srv.URL, WithHTTPClient(srv.Client()))

	_, _ = client.Tasks(context.Background())
	snap, _ := client.Metrics(context.Background())
	fmt.Println(snap.Counters["http.get_v1_tasks.requests"])
	// Output: 1
}
