package platform

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sybiltd/internal/mcs"
	"sybiltd/internal/mems"
	"sybiltd/internal/simulate"
)

func testTasks(n int) []mcs.Task {
	tasks := make([]mcs.Task, n)
	for i := range tasks {
		tasks[i] = mcs.Task{Name: "", X: float64(i) * 10, Y: 0}
	}
	return tasks
}

func at(min int) time.Time {
	return time.Date(2026, 7, 1, 10, min, 0, 0, time.UTC)
}

func TestStoreSubmitAndDataset(t *testing.T) {
	s := NewLocalStore(testTasks(3))
	if err := s.Submit(context.Background(), "alice", 0, -80, at(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(context.Background(), "alice", 1, -70, at(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(context.Background(), "bob", 0, -82, at(2)); err != nil {
		t.Fatal(err)
	}
	ds, _ := s.Dataset(context.Background())
	if err := ds.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	if ds.NumAccounts() != 2 || ds.NumTasks() != 3 {
		t.Fatalf("snapshot = %d accounts, %d tasks", ds.NumAccounts(), ds.NumTasks())
	}
	if v, ok := ds.Value(0, 1); !ok || v != -70 {
		t.Errorf("alice task 1 = %v, %v", v, ok)
	}
}

func TestStoreRejections(t *testing.T) {
	s := NewLocalStore(testTasks(2))
	if err := s.Submit(context.Background(), "", 0, 1, at(0)); !errors.Is(err, ErrEmptyAccount) {
		t.Errorf("empty account: %v", err)
	}
	if err := s.Submit(context.Background(), "a", 9, 1, at(0)); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("unknown task: %v", err)
	}
	if err := s.Submit(context.Background(), "a", -1, 1, at(0)); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("negative task: %v", err)
	}
	if err := s.Submit(context.Background(), "a", 0, 1, at(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(context.Background(), "a", 0, 2, at(1)); !errors.Is(err, ErrDuplicateReport) {
		t.Errorf("duplicate: %v", err)
	}
}

// TestStoreRejectsNonFiniteValues: a single NaN observation would poison
// CRH/mean aggregation for its task, so non-finite values die at the
// store boundary with typed, wire-codeable errors — and without
// registering the submitting account as a side effect.
func TestStoreRejectsNonFiniteValues(t *testing.T) {
	s := NewLocalStore(testTasks(2))
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := s.Submit(context.Background(), "a", 0, v, at(0)); !errors.Is(err, ErrMalformedRequest) {
			t.Errorf("Submit(%v) = %v, want ErrMalformedRequest", v, err)
		}
	}
	for _, feats := range [][]float64{
		{1, math.NaN(), 3},
		{math.Inf(1)},
		{1, 2, math.Inf(-1)},
	} {
		if err := s.RecordFingerprintFeatures(context.Background(), "a", feats); !errors.Is(err, ErrBadFingerprint) {
			t.Errorf("RecordFingerprintFeatures(%v) = %v, want ErrBadFingerprint", feats, err)
		}
	}
	// A raw capture whose streams contain non-finite samples extracts to
	// non-finite features and must be rejected the same way.
	dev := mems.NewDevice(mems.ModelIPhone7, 1, rand.New(rand.NewSource(1)))
	rec := dev.Capture(mems.DefaultCaptureSpec(), rand.New(rand.NewSource(2)))
	rec.AccelX[3] = math.NaN()
	if err := s.RecordFingerprint(context.Background(), "a", rec); !errors.Is(err, ErrBadFingerprint) {
		t.Errorf("RecordFingerprint(NaN capture) = %v, want ErrBadFingerprint", err)
	}
	if s.NumAccounts() != 0 {
		t.Errorf("rejected writes registered %d accounts", s.NumAccounts())
	}
}

func TestStoreFingerprint(t *testing.T) {
	s := NewLocalStore(testTasks(1))
	dev := mems.NewDevice(mems.ModelIPhone7, 1, rand.New(rand.NewSource(1)))
	rec := dev.Capture(mems.DefaultCaptureSpec(), rand.New(rand.NewSource(2)))
	if err := s.RecordFingerprint(context.Background(), "alice", rec); err != nil {
		t.Fatal(err)
	}
	ds, _ := s.Dataset(context.Background())
	if len(ds.Accounts[0].Fingerprint) == 0 {
		t.Error("fingerprint not stored")
	}
	// Malformed captures rejected.
	bad := rec
	bad.GyroZ = bad.GyroZ[:10]
	if err := s.RecordFingerprint(context.Background(), "x", bad); !errors.Is(err, ErrBadFingerprint) {
		t.Errorf("ragged capture: %v", err)
	}
	if err := s.RecordFingerprint(context.Background(), "x", mems.Recording{}); !errors.Is(err, ErrBadFingerprint) {
		t.Errorf("empty capture: %v", err)
	}
	if err := s.RecordFingerprint(context.Background(), "", rec); !errors.Is(err, ErrEmptyAccount) {
		t.Errorf("empty account: %v", err)
	}
}

func TestStoreAggregate(t *testing.T) {
	s := NewLocalStore(testTasks(1))
	for i, v := range []float64{10, 12, 11} {
		if err := s.Submit(context.Background(), string(rune('a'+i)), 0, v, at(i)); err != nil {
			t.Fatal(err)
		}
	}
	res, _, err := s.Aggregate(context.Background(), "median")
	if err != nil {
		t.Fatal(err)
	}
	if res.Truths[0] != 11 {
		t.Errorf("median = %v", res.Truths[0])
	}
	if _, _, err := s.Aggregate(context.Background(), "nope"); !errors.Is(err, ErrUnknownAggregation) {
		t.Errorf("unknown method: %v", err)
	}
	for _, m := range []string{"crh", "mean", "td-ts", "td-tr"} {
		if _, _, err := s.Aggregate(context.Background(), m); err != nil {
			t.Errorf("%s: %v", m, err)
		}
	}
}

func TestStoreConcurrentSubmissions(t *testing.T) {
	s := NewLocalStore(testTasks(50))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			account := string(rune('a' + w))
			for task := 0; task < 50; task++ {
				if err := s.Submit(context.Background(), account, task, float64(task), at(task%60)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ds, _ := s.Dataset(context.Background())
	if ds.NumAccounts() != 8 {
		t.Fatalf("accounts = %d", ds.NumAccounts())
	}
	for i := range ds.Accounts {
		if len(ds.Accounts[i].Observations) != 50 {
			t.Errorf("account %d has %d observations", i, len(ds.Accounts[i].Observations))
		}
	}
}

func newTestServer(t *testing.T, numTasks int) (*httptest.Server, *Client) {
	t.Helper()
	store := NewLocalStore(testTasks(numTasks))
	srv := httptest.NewServer(NewServer(store, nil))
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL, WithHTTPClient(srv.Client()))
}

func TestHTTPRoundTrip(t *testing.T) {
	_, client := newTestServer(t, 2)
	ctx := context.Background()

	tasks, err := client.Tasks(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || tasks[1].Name != "T2" {
		t.Fatalf("tasks = %+v", tasks)
	}

	for i, v := range []float64{-80, -81, -79} {
		err := client.Submit(ctx, SubmissionRequest{
			Account: string(rune('a' + i)), Task: 0, Value: v, Time: at(i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	dev := mems.NewDevice(mems.ModelNexus5, 1, rand.New(rand.NewSource(3)))
	rec := dev.Capture(mems.DefaultCaptureSpec(), rand.New(rand.NewSource(4)))
	if err := client.RecordFingerprint(ctx, "a", rec); err != nil {
		t.Fatal(err)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accounts != 3 || stats.Tasks != 2 {
		t.Fatalf("stats = %+v", stats)
	}

	resp, err := client.Aggregate(ctx, "crh")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Truths) != 2 {
		t.Fatalf("truths = %+v", resp.Truths)
	}
	if !resp.Truths[0].Estimated || resp.Truths[0].Value > -75 || resp.Truths[0].Value < -85 {
		t.Errorf("task 0 estimate = %+v", resp.Truths[0])
	}
	if resp.Truths[1].Estimated {
		t.Error("task 1 has no data and must not be estimated")
	}
}

func TestHTTPFailureInjection(t *testing.T) {
	srv, client := newTestServer(t, 1)
	ctx := context.Background()

	// Malformed JSON body.
	resp, err := srv.Client().Post(srv.URL+"/v1/submissions", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d", resp.StatusCode)
	}

	// Unknown fields rejected.
	resp, err = srv.Client().Post(srv.URL+"/v1/submissions", "application/json",
		strings.NewReader(`{"account":"a","task":0,"value":1,"bogus":true}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d", resp.StatusCode)
	}

	// Unknown task -> 400 with message.
	err = client.Submit(ctx, SubmissionRequest{Account: "a", Task: 7, Value: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown task") {
		t.Errorf("unknown task err = %v", err)
	}

	// Duplicate -> 409.
	if err := client.Submit(ctx, SubmissionRequest{Account: "a", Task: 0, Value: 1, Time: at(0)}); err != nil {
		t.Fatal(err)
	}
	err = client.Submit(ctx, SubmissionRequest{Account: "a", Task: 0, Value: 2, Time: at(1)})
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate err = %v", err)
	}

	// Unknown aggregation -> 400.
	if _, err := client.Aggregate(ctx, "quantum"); err == nil {
		t.Error("unknown aggregation should error")
	}

	// Bad fingerprint -> 400.
	if err := client.RecordFingerprint(ctx, "a", mems.Recording{SampleRate: 100}); err == nil {
		t.Error("empty capture should error")
	}
}

func TestSubmissionDefaultsTimestamp(t *testing.T) {
	_, client := newTestServer(t, 1)
	if err := client.Submit(context.Background(), SubmissionRequest{Account: "a", Task: 0, Value: 5}); err != nil {
		t.Fatal(err)
	}
	// The submission must exist with a non-zero time.
	resp, err := client.Aggregate(context.Background(), "mean")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truths[0].Estimated || resp.Truths[0].Value != 5 {
		t.Errorf("aggregate after default-time submit = %+v", resp.Truths[0])
	}
}

func TestTasksFromPOIs(t *testing.T) {
	tasks, err := TasksFromPOIs([]string{"A", "B"}, []float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if tasks[1].Name != "B" || tasks[1].X != 2 || tasks[1].Y != 4 {
		t.Errorf("tasks = %+v", tasks)
	}
	if _, err := TasksFromPOIs([]string{"A"}, []float64{1, 2}, []float64{3}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestEndToEndSybilDefenseOverHTTP(t *testing.T) {
	// Replay the Table I scenario through the HTTP API and check that
	// td-tr resists while crh caves.
	_, client := newTestServer(t, 4)
	ctx := context.Background()

	submit := func(account string, task int, value float64, ts time.Time) {
		t.Helper()
		if err := client.Submit(ctx, SubmissionRequest{Account: account, Task: task, Value: value, Time: ts}); err != nil {
			t.Fatal(err)
		}
	}
	base := time.Date(2026, 7, 1, 10, 0, 0, 0, time.UTC)
	ts := func(min, sec int) time.Time {
		return base.Add(time.Duration(min)*time.Minute + time.Duration(sec)*time.Second)
	}

	submit("1", 0, -84.48, ts(0, 35))
	submit("1", 1, -82.11, ts(2, 42))
	submit("1", 2, -75.16, ts(10, 22))
	submit("1", 3, -72.71, ts(13, 41))
	submit("2", 1, -72.27, ts(4, 15))
	submit("2", 2, -77.21, ts(6, 1))
	submit("3", 0, -72.41, ts(1, 21))
	submit("3", 1, -91.49, ts(4, 5))
	submit("3", 3, -73.55, ts(8, 28))
	for i, acct := range []string{"4a", "4b", "4c"} {
		submit(acct, 0, -50, ts(1+i, 10))
		submit(acct, 2, -50, ts(15+i, 24))
		submit(acct, 3, -50, ts(20+i, 6))
	}

	crh, err := client.Aggregate(ctx, "crh")
	if err != nil {
		t.Fatal(err)
	}
	tdtr, err := client.Aggregate(ctx, "td-tr")
	if err != nil {
		t.Fatal(err)
	}
	// CRH is dragged toward -50 on T1; td-tr stays below -65.
	if crh.Truths[0].Value < -65 {
		t.Errorf("CRH T1 = %.2f, expected dragged above -65", crh.Truths[0].Value)
	}
	if tdtr.Truths[0].Value > -65 {
		t.Errorf("td-tr T1 = %.2f, expected resistant (below -65)", tdtr.Truths[0].Value)
	}
}

func TestDatasetExportOverHTTP(t *testing.T) {
	_, client := newTestServer(t, 2)
	ctx := context.Background()
	if err := client.Submit(ctx, SubmissionRequest{Account: "a", Task: 0, Value: -70, Time: at(0)}); err != nil {
		t.Fatal(err)
	}
	if err := client.Submit(ctx, SubmissionRequest{Account: "b", Task: 1, Value: -75, Time: at(1)}); err != nil {
		t.Fatal(err)
	}
	ds, err := client.Dataset(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumAccounts() != 2 || ds.NumTasks() != 2 {
		t.Fatalf("exported shape = %d accounts, %d tasks", ds.NumAccounts(), ds.NumTasks())
	}
	if v, ok := ds.Value(0, 0); !ok || v != -70 {
		t.Errorf("exported value = %v, %v", v, ok)
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("exported dataset invalid: %v", err)
	}
}

func TestDriveCampaignEndToEnd(t *testing.T) {
	_, client := newTestServer(t, 10)
	report, err := DriveCampaign(context.Background(), client, AgentConfig{
		NumLegit:      6,
		SybilAccounts: 4,
		Activeness:    0.6,
		Seed:          3,
		Start:         at(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 6 honest + 2 attackers x 4 accounts = 14.
	if report.Accounts != 14 || report.Tasks != 10 {
		t.Fatalf("report = %+v", report)
	}
	if len(report.Outcomes) != 4 {
		t.Fatalf("outcomes = %+v", report.Outcomes)
	}
	byMethod := map[string]MethodOutcome{}
	for _, o := range report.Outcomes {
		byMethod[o.Method] = o
	}
	// The framework with trajectory grouping must beat plain CRH.
	if byMethod["td-tr"].MAE >= byMethod["crh"].MAE {
		t.Errorf("td-tr MAE %.2f not below crh %.2f", byMethod["td-tr"].MAE, byMethod["crh"].MAE)
	}
}

func TestDriveCampaignValidation(t *testing.T) {
	_, client := newTestServer(t, 1)
	// Platform with a single task: the agent requires >= 2.
	if _, err := DriveCampaign(context.Background(), client, AgentConfig{Seed: 1}); err == nil {
		t.Error("single-task platform should be rejected")
	}
	_, client = newTestServer(t, 5)
	if _, err := DriveCampaign(context.Background(), client, AgentConfig{NumLegit: -1}); err == nil {
		t.Error("negative legit count should be rejected")
	}
}

func TestDriveCampaignNoAttackers(t *testing.T) {
	_, client := newTestServer(t, 5)
	report, err := DriveCampaign(context.Background(), client, AgentConfig{
		NumLegit: 3, Seed: 4, Start: at(0), Methods: []string{"mean"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Accounts != 3 {
		t.Errorf("accounts = %d, want 3", report.Accounts)
	}
	if len(report.Outcomes) != 1 || report.Outcomes[0].Method != "mean" {
		t.Errorf("outcomes = %+v", report.Outcomes)
	}
	// Honest-only campaign: mean MAE should be small.
	if report.Outcomes[0].MAE > 5 {
		t.Errorf("honest-only MAE = %.2f, want small", report.Outcomes[0].MAE)
	}
}

func TestConcurrentCampaignsOnOnePlatform(t *testing.T) {
	// Several field teams drive the same platform concurrently; the store
	// must stay consistent and aggregation must still run. Run with -race
	// to catch synchronization bugs.
	_, client := newTestServer(t, 8)
	const teams = 4
	var wg sync.WaitGroup
	errs := make([]error, teams)
	for team := 0; team < teams; team++ {
		wg.Add(1)
		go func(team int) {
			defer wg.Done()
			_, err := DriveCampaign(context.Background(), client, AgentConfig{
				NumLegit:      3,
				SybilAccounts: 2,
				Seed:          int64(team + 1),
				Start:         at(team),
				AccountPrefix: string(rune('A'+team)) + "-",
				Methods:       []string{"crh"},
			})
			errs[team] = err
		}(team)
	}
	wg.Wait()
	for team, err := range errs {
		if err != nil {
			t.Fatalf("team %d: %v", team, err)
		}
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 4 teams x (3 honest + 2 attackers x 2 accounts) = 28 accounts.
	if stats.Accounts != 28 {
		t.Errorf("accounts = %d, want 28", stats.Accounts)
	}
	// The merged campaign still aggregates.
	if _, err := client.Aggregate(context.Background(), "td-tr"); err != nil {
		t.Fatal(err)
	}
	ds, err := client.Dataset(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("merged dataset invalid: %v", err)
	}
}

func TestAccountCap(t *testing.T) {
	s := NewLocalStore(testTasks(2))
	s.SetMaxAccounts(2)
	if err := s.Submit(context.Background(), "a", 0, 1, at(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(context.Background(), "b", 0, 2, at(1)); err != nil {
		t.Fatal(err)
	}
	// Existing accounts keep working.
	if err := s.Submit(context.Background(), "a", 1, 3, at(2)); err != nil {
		t.Fatal(err)
	}
	// New accounts are rejected, for submissions and fingerprints alike.
	if err := s.Submit(context.Background(), "c", 0, 4, at(3)); !errors.Is(err, ErrTooManyAccounts) {
		t.Errorf("cap not enforced: %v", err)
	}
	dev := mems.NewDevice(mems.ModelLGG5, 1, rand.New(rand.NewSource(1)))
	rec := dev.Capture(mems.DefaultCaptureSpec(), rand.New(rand.NewSource(2)))
	if err := s.RecordFingerprint(context.Background(), "c", rec); !errors.Is(err, ErrTooManyAccounts) {
		t.Errorf("cap not enforced on fingerprints: %v", err)
	}
	// Lifting the cap admits the account.
	s.SetMaxAccounts(0)
	if err := s.Submit(context.Background(), "c", 0, 4, at(3)); err != nil {
		t.Fatal(err)
	}
}

func TestAccountCapOverHTTP(t *testing.T) {
	store := NewLocalStore(testTasks(1))
	store.SetMaxAccounts(1)
	srv := httptest.NewServer(NewServer(store, nil))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, WithHTTPClient(srv.Client()))
	ctx := context.Background()
	if err := client.Submit(ctx, SubmissionRequest{Account: "a", Task: 0, Value: 1, Time: at(0)}); err != nil {
		t.Fatal(err)
	}
	err := client.Submit(ctx, SubmissionRequest{Account: "b", Task: 0, Value: 2, Time: at(1)})
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Errorf("expected HTTP 429, got %v", err)
	}
}

func TestReplayDataset(t *testing.T) {
	// Generate a campaign, replay it onto a fresh platform, and check that
	// the replayed platform reproduces the original aggregation.
	sc, err := simulate.Build(simulate.Config{Seed: 31, SybilActiveness: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	store := NewLocalStore(sc.Dataset.Tasks)
	srv := httptest.NewServer(NewServer(store, nil))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, WithHTTPClient(srv.Client()))

	var events int
	n, err := ReplayDataset(context.Background(), client, sc.Dataset, ReplayOptions{
		OnEvent: func(int) { events++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	var wantObs int
	for _, a := range sc.Dataset.Accounts {
		wantObs += len(a.Observations)
	}
	if n != wantObs || events != wantObs {
		t.Fatalf("replayed %d events (callbacks %d), want %d", n, events, wantObs)
	}

	// The replayed platform holds an equivalent dataset...
	got, _ := store.Dataset(context.Background())
	if got.NumAccounts() != sc.Dataset.NumAccounts() {
		t.Fatalf("accounts = %d, want %d", got.NumAccounts(), sc.Dataset.NumAccounts())
	}
	for i := range got.Accounts {
		if len(got.Accounts[i].Fingerprint) == 0 {
			t.Fatalf("account %q lost its fingerprint", got.Accounts[i].ID)
		}
	}
	// ...and aggregating it gives the same answer as aggregating the
	// original (same algorithm, same data).
	direct, err := AlgorithmByName("td-tr")
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Run(sc.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := store.Aggregate(context.Background(), "td-tr")
	if err != nil {
		t.Fatal(err)
	}
	for j := range want.Truths {
		a, b := want.Truths[j], res.Truths[j]
		if a != a && b != b {
			continue // both NaN
		}
		// Replay registers accounts in timestamp order, so floating-point
		// summation order differs from the generation order by design;
		// results must agree to numerical precision, not bit-for-bit.
		if diff := math.Abs(a - b); diff > 1e-6 {
			t.Fatalf("T%d: replayed %.8f vs direct %.8f (diff %g)", j+1, b, a, diff)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	_, client := newTestServer(t, 2)
	if _, err := ReplayDataset(context.Background(), nil, mcs.NewDataset(1), ReplayOptions{}); err == nil {
		t.Error("nil client should error")
	}
	if _, err := ReplayDataset(context.Background(), client, nil, ReplayOptions{}); err == nil {
		t.Error("nil dataset should error")
	}
	bad := mcs.NewDataset(1)
	bad.AddAccount(mcs.Account{ID: ""})
	if _, err := ReplayDataset(context.Background(), client, bad, ReplayOptions{}); err == nil {
		t.Error("invalid dataset should error")
	}
	// Cancellation interrupts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds := mcs.NewDataset(1)
	ds.AddAccount(mcs.Account{ID: "a", Observations: []mcs.Observation{{Task: 0, Value: 1, Time: at(0)}}})
	if _, err := ReplayDataset(ctx, client, ds, ReplayOptions{}); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestFeatureFingerprintOverHTTP(t *testing.T) {
	_, client := newTestServer(t, 1)
	ctx := context.Background()
	if err := client.RecordFeatureFingerprint(ctx, "a", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := client.RecordFeatureFingerprint(ctx, "b", nil); err == nil {
		t.Error("empty feature vector should error")
	}
}

func TestAggregateReportsUncertainty(t *testing.T) {
	_, client := newTestServer(t, 2)
	ctx := context.Background()
	// Three agreeing reports on task 0; a single report on task 1.
	for i, v := range []float64{-70, -70.4, -69.8} {
		if err := client.Submit(ctx, SubmissionRequest{Account: string(rune('a' + i)), Task: 0, Value: v, Time: at(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Submit(ctx, SubmissionRequest{Account: "a", Task: 1, Value: -80, Time: at(9)}); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Aggregate(ctx, "crh")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truths[0].Uncertainty <= 0 || resp.Truths[0].Uncertainty > 1 {
		t.Errorf("task 0 uncertainty = %v, want small positive", resp.Truths[0].Uncertainty)
	}
	// Single-report task: uncertainty omitted (infinite server-side).
	if resp.Truths[1].Uncertainty != 0 {
		t.Errorf("task 1 uncertainty = %v, want omitted", resp.Truths[1].Uncertainty)
	}
}
