// WAL tail export for online resharding (POST /v1/repl/export): the
// migration coordinator seeds a joining replica group from a filtered
// dataset read, then streams the donor's WAL tail — decoded records, not
// raw frames — until the joiner has everything the ring moved to it. The
// records come back decoded because the consumer is not a follower of
// this WAL: the joiner journals them under its own sequence numbers via
// the regular Submit/fingerprint API, and the (account, task) duplicate
// guard makes re-delivery after a crash or resume harmless.
package platform

import (
	"context"
	"encoding/json"
	"fmt"
	"time"
)

// ExportRecord is one decoded WAL record on the export wire. It mirrors
// walRecord minus the internals a foreign consumer must not depend on:
// Seq is the donor's sequence number (the resume cursor), everything else
// is the mutation itself.
type ExportRecord struct {
	Seq      uint64    `json:"seq"`
	Op       string    `json:"op"`
	Account  string    `json:"account"`
	Task     int       `json:"task,omitempty"`
	Value    float64   `json:"value,omitempty"`
	Time     time.Time `json:"time"`
	Features []float64 `json:"features,omitempty"`
}

// Export operation tags (ExportRecord.Op). These are the WAL's own tags;
// exported here so the coordinator can switch on them without knowing the
// WAL encoding.
const (
	ExportOpSubmit       = opSubmit
	ExportOpFingerprint  = opFingerprint
	ExportOpFence        = opFence
	ExportOpUnfencePurge = opUnfencePurge
)

// ExportBatch is the export response: records in (FromSeq, NextSeq],
// the donor's durable high-water mark (NextSeq == DurableSeq means the
// consumer is caught up), and the compaction signal. SnapshotNeeded means
// the requested range was compacted into a snapshot and is no longer in
// the WAL — the consumer must re-seed from a dataset read and restart the
// tail from the current DurableSeq.
type ExportBatch struct {
	Records        []ExportRecord `json:"records,omitempty"`
	NextSeq        uint64         `json:"next_seq"`
	DurableSeq     uint64         `json:"durable_seq"`
	SnapshotNeeded bool           `json:"snapshot_needed,omitempty"`
	// Epoch is the donor's replication epoch at serve time. A failover
	// promotes a follower whose durable history may end a few records
	// short of the old primary's; the new lineage then reuses those
	// sequence numbers for different records. A cursor minted under one
	// epoch is therefore meaningless under another — consumers must
	// treat an epoch change exactly like SnapshotNeeded and re-seed.
	Epoch uint64 `json:"epoch"`
}

// ExportRequest is the POST /v1/repl/export body.
type ExportRequest struct {
	// FromSeq is the exclusive lower bound: records strictly after it are
	// returned.
	FromSeq uint64 `json:"from_seq"`
	// MaxRecords bounds the batch (0 = server default).
	MaxRecords int `json:"max_records,omitempty"`
}

// Exporter is the capability interface for the migration tail: a store
// whose durable history can be read back as decoded records by sequence
// range. LocalStore implements it when durable; RemoteStore forwards it
// over the wire. Works on followers too — after a donor-primary failover
// the coordinator resumes the tail from the promoted follower, whose WAL
// holds the same records at the same sequence numbers.
type Exporter interface {
	ExportSince(ctx context.Context, from uint64, max int) (ExportBatch, error)
}

// LocalStore implements Exporter (durable stores only).
var _ Exporter = (*LocalStore)(nil)

// defaultExportBatch bounds an export batch when the request leaves
// MaxRecords zero.
const defaultExportBatch = 1024

// ExportSince returns the decoded durable WAL records strictly after
// from, at most max of them (0 = defaultExportBatch). On a store with no
// journal it fails with ErrUnimplemented: there is no durable history to
// export. Unlike client reads this path is NOT gated by follower
// staleness — it reports exactly how far its history goes (DurableSeq),
// and the caller owns the decision of whether that is far enough.
func (s *LocalStore) ExportSince(ctx context.Context, from uint64, max int) (ExportBatch, error) {
	if err := ctx.Err(); err != nil {
		return ExportBatch{}, fmt.Errorf("%w: %v", ErrOverloaded, err)
	}
	if s.journal == nil {
		return ExportBatch{}, fmt.Errorf("%w: WAL export needs a durable store", ErrUnimplemented)
	}
	if max <= 0 {
		max = defaultExportBatch
	}
	frames, snapNeeded, err := s.journal.framesSince(from, max)
	if err != nil {
		return ExportBatch{}, err
	}
	batch := ExportBatch{
		NextSeq:        from,
		DurableSeq:     s.journal.durableSeq(),
		SnapshotNeeded: snapNeeded,
		Epoch:          s.journal.Epoch(),
	}
	if snapNeeded {
		return batch, nil
	}
	for _, f := range frames {
		var rec walRecord
		if err := json.Unmarshal(f.Payload, &rec); err != nil {
			// framesSince serves only CRC-valid durable frames; an
			// undecodable one means the WAL and this code disagree.
			return ExportBatch{}, fmt.Errorf("%w: export frame %d undecodable: %v", ErrDurability, f.Seq, err)
		}
		batch.Records = append(batch.Records, ExportRecord{
			Seq: rec.Seq, Op: rec.Op, Account: rec.Account,
			Task: rec.Task, Value: rec.Value, Time: rec.Time, Features: rec.Features,
		})
		batch.NextSeq = rec.Seq
	}
	return batch, nil
}
