package platform

import (
	"sync"
	"time"

	"sybiltd/internal/obs"
)

// BreakerState is the circuit breaker's state machine position.
type BreakerState int

const (
	// BreakerClosed: traffic flows normally; consecutive transport-level
	// failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the failure threshold was reached; every call is
	// refused locally with ErrCircuitOpen until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request is
	// allowed through. Success closes the circuit, failure reopens it.
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a minimal closed/open/half-open circuit breaker. Failures
// are transport-level only (connection errors, 5xx, torn bodies): a 4xx —
// including 429 — proves the server is alive and answering, so it counts
// as breaker success even though the request was refused.
//
// Transitions are recorded as counters in obs.Default()
// (client.breaker.opened / half_open / closed), so a process embedding
// the client exposes breaker behavior through the same /metrics endpoints
// as everything else.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time

	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may be sent now. In half-open state only
// one in-flight probe is admitted; everything else is refused until the
// probe settles.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		obs.Default().Counter("client.breaker.half_open").Inc()
		return nil
	default: // BreakerHalfOpen
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// record reports one settled request outcome.
func (b *breaker) record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		if b.state != BreakerClosed {
			obs.Default().Counter("client.breaker.closed").Inc()
		}
		b.state = BreakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	b.probing = false
	if b.state == BreakerHalfOpen {
		// The probe failed: reopen and restart the cooldown.
		b.state = BreakerOpen
		b.openedAt = b.now()
		obs.Default().Counter("client.breaker.opened").Inc()
		return
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		obs.Default().Counter("client.breaker.opened").Inc()
	}
}

// currentState returns the state, promoting open → half-open when the
// cooldown has elapsed so callers see the probe-eligible state.
func (b *breaker) currentState() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}
