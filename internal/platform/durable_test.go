package platform

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sybiltd/internal/obs"
	"sybiltd/internal/wal"
)

// scriptOp is one acknowledged mutation of the scripted campaign the
// recovery tests replay and crash.
type scriptOp struct {
	rec walRecord
}

// campaignScript is a fixed mix of fingerprints and submissions across
// five accounts and three tasks — enough interleaving that any recovered
// prefix exercises account registration order, fingerprint overwrite, and
// per-task submissions.
func campaignScript() []scriptOp {
	fp := func(account string, seed float64) scriptOp {
		feats := make([]float64, 6)
		for i := range feats {
			feats[i] = seed + float64(i)*0.25
		}
		return scriptOp{walRecord{Op: opFingerprint, Account: account, Features: feats}}
	}
	sub := func(account string, task int, value float64, minute int) scriptOp {
		return scriptOp{walRecord{Op: opSubmit, Account: account, Task: task, Value: value, Time: at(minute)}}
	}
	return []scriptOp{
		fp("ana", 1.0),
		sub("ana", 0, -80.5, 0),
		fp("bo", 2.0),
		sub("bo", 0, -79.25, 1),
		sub("ana", 1, -71, 2),
		fp("cy", 3.0),
		sub("cy", 2, -90.125, 3),
		sub("bo", 1, -70.5, 4),
		fp("dee", 4.0),
		sub("dee", 0, -81, 5),
		fp("dee", 4.5), // fingerprint overwrite
		sub("cy", 0, -80, 6),
		sub("dee", 2, -89, 7),
		fp("eva", 5.0),
		sub("eva", 1, -72.75, 8),
		sub("eva", 2, -88.5, 9),
	}
}

// applyOp drives one scripted op through the store's public API.
func applyOp(s *LocalStore, op scriptOp) error {
	if op.rec.Op == opSubmit {
		return s.Submit(context.Background(), op.rec.Account, op.rec.Task, op.rec.Value, op.rec.Time)
	}
	return s.RecordFingerprintFeatures(context.Background(), op.rec.Account, op.rec.Features)
}

// signature canonicalizes a store's full state: dataset JSON is
// deterministic (registration order, time-sorted observations), so equal
// signatures mean equal recovered state.
func signature(t *testing.T, s *LocalStore) string {
	t.Helper()
	var buf bytes.Buffer
	ds, err := s.Dataset(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// prefixSignatures returns sig[r] = the state signature after applying
// the first r scripted ops to a fresh in-memory store.
func prefixSignatures(t *testing.T, ops []scriptOp) []string {
	t.Helper()
	sigs := make([]string, 0, len(ops)+1)
	ref := NewLocalStore(testTasks(3))
	sigs = append(sigs, signature(t, ref))
	for _, op := range ops {
		if err := applyOp(ref, op); err != nil {
			t.Fatalf("reference apply: %v", err)
		}
		sigs = append(sigs, signature(t, ref))
	}
	return sigs
}

// runCampaign opens a durable store in dir, applies the script, and
// returns the durability handle with every op acknowledged.
func runCampaign(t *testing.T, dir string, opts DurableOptions) *Durability {
	t.Helper()
	store, d, _, err := OpenDurable(dir, testTasks(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range campaignScript() {
		if err := applyOp(store, op); err != nil {
			t.Fatalf("op %d not acknowledged: %v", i, err)
		}
	}
	return d
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := runCampaign(t, dir, DurableOptions{})
	want := signature(t, d.store)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	store, d2, stats, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !stats.SnapshotLoaded {
		t.Error("close did not leave a snapshot")
	}
	if stats.WALRecords != 0 {
		t.Errorf("WAL not compacted at close: %d records", stats.WALRecords)
	}
	if got := signature(t, store); got != want {
		t.Errorf("recovered state differs:\n got %s\nwant %s", got, want)
	}
	// The recovered store keeps accepting (and journaling) new work.
	if err := store.Submit(context.Background(), "fred", 0, -77, at(30)); err != nil {
		t.Fatal(err)
	}
}

// TestDurableMatchesInMemory: a -data-dir run must be behavior-identical
// to the in-memory platform — same acks, same rejections, same dataset.
func TestDurableMatchesInMemory(t *testing.T) {
	mem := NewLocalStore(testTasks(3))
	store, d, _, err := OpenDurable(t.TempDir(), testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i, op := range campaignScript() {
		em, ed := applyOp(mem, op), applyOp(store, op)
		if (em == nil) != (ed == nil) {
			t.Fatalf("op %d: in-memory err=%v durable err=%v", i, em, ed)
		}
	}
	// Rejections must match too, including the new non-finite guards.
	type try func(s *LocalStore) error
	rejections := []try{
		func(s *LocalStore) error { return s.Submit(context.Background(), "ana", 0, -1, at(20)) },    // duplicate
		func(s *LocalStore) error { return s.Submit(context.Background(), "zed", 99, -1, at(20)) },   // unknown task
		func(s *LocalStore) error { return s.Submit(context.Background(), "", 0, -1, at(20)) },       // empty account
		func(s *LocalStore) error { return s.Submit(context.Background(), "zed", 0, nan(), at(20)) }, // NaN
	}
	for i, reject := range rejections {
		em, ed := reject(mem), reject(store)
		if !errors.Is(ed, errorRoot(em)) {
			t.Errorf("rejection %d: in-memory %v, durable %v", i, em, ed)
		}
	}
	if signature(t, mem) != signature(t, store) {
		t.Error("in-memory and durable stores diverged")
	}
}

// errorRoot maps a store error to its sentinel for errors.Is comparison.
func errorRoot(err error) error {
	for _, sentinel := range []error{ErrDuplicateReport, ErrUnknownTask, ErrEmptyAccount, ErrMalformedRequest, ErrBadFingerprint, ErrTooManyAccounts} {
		if errors.Is(err, sentinel) {
			return sentinel
		}
	}
	return err
}

func nan() float64 { return math.NaN() }

// TestTortureCrashAtEveryOffset is the kill-recover equivalence check:
// run the scripted campaign, then simulate a crash at every byte offset
// of the WAL and verify each recovery yields exactly a prefix of the
// acknowledged operations — never a lost acknowledged write, never a
// phantom record — with the prefix length monotone in the surviving
// bytes. Short mode strides through offsets to stay fast in tier-1.
func TestTortureCrashAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	d := runCampaign(t, dir, DurableOptions{}) // SnapshotEvery 0: all ops stay in the WAL
	walBytes, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.w.Close(); err != nil { // close without the final snapshot
		t.Fatal(err)
	}
	ops := campaignScript()
	if len(walBytes) < 500 {
		t.Fatalf("campaign WAL implausibly small: %d bytes", len(walBytes))
	}

	sigs := prefixSignatures(t, ops)
	sigToPrefix := make(map[string]int, len(sigs))
	for r, sig := range sigs {
		sigToPrefix[sig] = r
	}

	stride := 1
	if testing.Short() {
		stride = 13
	}
	crashBase := t.TempDir()
	lastPrefix := 0
	tested := 0
	for k := 0; k <= len(walBytes); k += stride {
		if k+stride > len(walBytes) {
			k = len(walBytes) // always test the complete log
		}
		crashDir := filepath.Join(crashBase, fmt.Sprintf("crash-%06d", k))
		if err := os.MkdirAll(crashDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crashDir, walFileName), walBytes[:k], 0o644); err != nil {
			t.Fatal(err)
		}
		store, d2, stats, err := OpenDurable(crashDir, testTasks(3), DurableOptions{})
		if err != nil {
			t.Fatalf("offset %d: recovery refused to start: %v", k, err)
		}
		prefix, ok := sigToPrefix[signature(t, store)]
		if !ok {
			t.Fatalf("offset %d: recovered state is not a prefix of the acknowledged ops", k)
		}
		if prefix != stats.RecordsReplayed {
			t.Fatalf("offset %d: replayed %d records but state matches prefix %d", k, stats.RecordsReplayed, prefix)
		}
		if prefix < lastPrefix {
			t.Fatalf("offset %d: prefix shrank %d -> %d (more bytes, less data)", k, lastPrefix, prefix)
		}
		lastPrefix = prefix
		tested++
		_ = d2.w.Close()
		if k == len(walBytes) {
			if prefix != len(ops) {
				t.Fatalf("full WAL recovered only %d/%d ops", prefix, len(ops))
			}
			break
		}
	}
	t.Logf("tested %d crash offsets over %d WAL bytes (stride %d)", tested, len(walBytes), stride)
}

// TestRecoveryCorruptionTable damages a full campaign's WAL in each of
// the ways the issue calls out and checks recovery serves the longest
// valid prefix and surfaces the damage in logs and metrics.
func TestRecoveryCorruptionTable(t *testing.T) {
	dir := t.TempDir()
	d := runCampaign(t, dir, DurableOptions{})
	walBytes, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.w.Close(); err != nil {
		t.Fatal(err)
	}
	ops := campaignScript()
	sigs := prefixSignatures(t, ops)
	scan := wal.Scan(walBytes)
	if len(scan.Records) != len(ops) || scan.Corrupt != nil {
		t.Fatalf("campaign WAL: %d records, corrupt %v", len(scan.Records), scan.Corrupt)
	}
	lastStart := scan.Offsets[len(ops)-1]

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		wantOps  int
		wantGone bool // expect BytesTruncated > 0
	}{
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-7] }, len(ops) - 1, true},
		{"flipped CRC byte", func(b []byte) []byte { b[lastStart+4] ^= 0x10; return b }, len(ops) - 1, true},
		{"zero-length record", func(b []byte) []byte { return append(b, make([]byte, wal.HeaderSize)...) }, len(ops), true},
		{"garbage header", func(b []byte) []byte {
			g := make([]byte, 24)
			binary.LittleEndian.PutUint32(g, 0xFFFFFFF0)
			return append(b, g...)
		}, len(ops), true},
		{"valid frame, undecodable payload", func(b []byte) []byte {
			frame, err := wal.EncodeFrame([]byte("definitely-not-json"))
			if err != nil {
				t.Fatal(err)
			}
			return append(b, frame...)
		}, len(ops), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			crashDir := t.TempDir()
			damaged := tc.mutate(append([]byte(nil), walBytes...))
			if err := os.WriteFile(filepath.Join(crashDir, walFileName), damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			var logBuf bytes.Buffer
			store, d2, stats, err := OpenDurable(crashDir, testTasks(3), DurableOptions{
				Registry: reg,
				Logger:   log.New(&logBuf, "", 0),
			})
			if err != nil {
				t.Fatalf("recovery refused to start: %v", err)
			}
			defer d2.Close()
			if got := signature(t, store); got != sigs[tc.wantOps] {
				t.Errorf("recovered state != prefix of %d ops", tc.wantOps)
			}
			if stats.RecordsReplayed != tc.wantOps {
				t.Errorf("replayed %d records, want %d", stats.RecordsReplayed, tc.wantOps)
			}
			if tc.wantGone && stats.BytesTruncated == 0 {
				t.Error("no bytes reported truncated")
			}
			if tc.wantGone && stats.CorruptReason == "" {
				t.Error("no corruption reason surfaced")
			}
			// Recovery summary must land in logs and metrics.
			if !strings.Contains(logBuf.String(), "recovered") {
				t.Errorf("no recovery summary logged: %q", logBuf.String())
			}
			snap := reg.Snapshot()
			if snap.Gauges["wal.recovery_records_replayed"] != int64(tc.wantOps) {
				t.Errorf("wal.recovery_records_replayed = %d", snap.Gauges["wal.recovery_records_replayed"])
			}
			if tc.wantGone && snap.Gauges["wal.recovery_bytes_truncated"] == 0 {
				t.Error("wal.recovery_bytes_truncated not set")
			}
			// The repaired log must re-open cleanly with the same state.
			if err := d2.w.Close(); err != nil {
				t.Fatal(err)
			}
			store2, d3, stats2, err := OpenDurable(crashDir, testTasks(3), DurableOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer d3.Close()
			if stats2.BytesTruncated != 0 || stats2.CorruptReason != "" {
				t.Errorf("second recovery still sees damage: %+v", stats2)
			}
			if signature(t, store2) != sigs[tc.wantOps] {
				t.Error("second recovery changed the state")
			}
		})
	}
}

// TestCrashMidAppendIsNotAcknowledged injects a crash inside a WAL write:
// the store must refuse to acknowledge the op (ErrDurability → HTTP 503),
// keep refusing mutations, and recover to exactly the acknowledged state.
func TestCrashMidAppendIsNotAcknowledged(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OS())
	store, _, _, err := OpenDurable(dir, testTasks(3), DurableOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	ops := campaignScript()
	for _, op := range ops[:5] {
		if err := applyOp(store, op); err != nil {
			t.Fatal(err)
		}
		acked++
	}

	ffs.CrashAfterBytes(10) // tear the next frame
	err = applyOp(store, ops[5])
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("crashed append returned %v, want ErrDurability", err)
	}
	if code, status := codeForError(err); code != CodeDurability || status != http.StatusServiceUnavailable {
		t.Errorf("wire mapping = %s/%d, want %s/503", code, status, CodeDurability)
	}
	if !errors.Is(sentinelForCode(CodeDurability), ErrDurability) {
		t.Error("durability code does not round-trip to its sentinel")
	}
	// The store must not have applied the unacknowledged op, and must
	// keep failing closed rather than diverging from the log.
	if ds, _ := store.Dataset(context.Background()); ds.NumAccounts() != 2 { // ana and bo after 5 ops
		t.Errorf("unacknowledged op changed state: %d accounts", ds.NumAccounts())
	}
	if err := applyOp(store, ops[6]); !errors.Is(err, ErrDurability) {
		t.Errorf("mutation after crash returned %v, want ErrDurability", err)
	}

	// Reboot: recovery yields exactly the acknowledged prefix.
	store2, d2, stats, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	sigs := prefixSignatures(t, ops)
	if got := signature(t, store2); got != sigs[acked] {
		t.Errorf("recovered state != acknowledged prefix of %d ops", acked)
	}
	if stats.BytesTruncated == 0 {
		t.Error("torn frame not truncated")
	}
}

// TestFsyncFailureFailsClosed: when fsync starts failing, acknowledged
// data must already be safe and new ops must be refused, not silently
// accepted into a log that may not survive.
func TestFsyncFailureFailsClosed(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(wal.OS())
	store, _, _, err := OpenDurable(dir, testTasks(3), DurableOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	ops := campaignScript()
	for _, op := range ops[:4] {
		if err := applyOp(store, op); err != nil {
			t.Fatal(err)
		}
	}
	ffs.FailSync(errors.New("injected fsync failure"))
	if err := applyOp(store, ops[4]); !errors.Is(err, ErrDurability) {
		t.Fatalf("unsynced op acknowledged: %v", err)
	}
	ffs.FailSync(nil)
	// Disk recovered: the platform resumes without a restart.
	if err := applyOp(store, ops[5]); err != nil {
		t.Fatalf("op after fsync recovery: %v", err)
	}

	store2, d2, _, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// ops[4] wrote its frame before the failed fsync, so it may legally
	// survive; everything acknowledged must. Recovered state is either
	// the acked set or acked+ops[4] applied in log order.
	sigs := prefixSignatures(t, ops)
	got := signature(t, store2)
	if got != sigs[6] && got != sigs[5] {
		t.Error("recovered state lost an acknowledged operation")
	}
}

// TestSnapshotCompaction checks periodic snapshots shrink the WAL and
// that snapshot + tail replay reassembles the full campaign.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	store, d, _, err := OpenDurable(dir, testTasks(3), DurableOptions{SnapshotEvery: 5, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ops := campaignScript()
	for _, op := range ops {
		if err := applyOp(store, op); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Snapshot().Counters["wal.snapshots"]; got != int64(len(ops)/5) {
		t.Errorf("wal.snapshots = %d, want %d", got, len(ops)/5)
	}
	// 16 ops with a snapshot every 5 leaves one record in the tail.
	if size := d.WALSize(); size == 0 || size > 600 {
		t.Errorf("WAL size after compaction = %d, want a small nonzero tail", size)
	}
	want := signature(t, store)
	if err := d.w.Close(); err != nil { // crash-style stop: no final snapshot
		t.Fatal(err)
	}

	store2, d2, stats, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !stats.SnapshotLoaded || stats.SnapshotSeq == 0 {
		t.Errorf("snapshot not used: %+v", stats)
	}
	if got := signature(t, store2); got != want {
		t.Error("snapshot + WAL tail did not reassemble the campaign")
	}
}

// TestCrashBetweenSnapshotAndWALReset covers the compaction crash window:
// the snapshot has been renamed into place but the WAL still holds the
// same operations. Recovery must skip them by sequence number instead of
// double-applying or refusing.
func TestCrashBetweenSnapshotAndWALReset(t *testing.T) {
	dir := t.TempDir()
	d := runCampaign(t, dir, DurableOptions{})
	walBytes, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	want := signature(t, d.store)
	if err := d.Snapshot(); err != nil { // snapshot written, WAL reset...
		t.Fatal(err)
	}
	if err := d.w.Close(); err != nil {
		t.Fatal(err)
	}
	// ...now resurrect the pre-reset WAL, as if the reset never hit disk.
	if err := os.WriteFile(filepath.Join(dir, walFileName), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	store, d2, stats, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := signature(t, store); got != want {
		t.Error("stale WAL records were double-applied")
	}
	if stats.RecordsSkipped != len(campaignScript()) {
		t.Errorf("skipped %d stale records, want %d", stats.RecordsSkipped, len(campaignScript()))
	}
	if stats.RecordsReplayed != 0 {
		t.Errorf("replayed %d records that the snapshot already covered", stats.RecordsReplayed)
	}
}

// TestWALMetricsExported checks the durability instruments land in the
// registry served at /v1/metrics and /metrics.
func TestWALMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	d := runCampaign(t, dir, DurableOptions{SnapshotEvery: 6, Registry: reg})
	defer d.Close()

	snap := reg.Snapshot()
	n := int64(len(campaignScript()))
	if got := snap.Counters["wal.records"]; got != n {
		t.Errorf("wal.records = %d, want %d", got, n)
	}
	for _, h := range []string{"wal.append_seconds", "wal.fsync_seconds", "wal.snapshot_seconds"} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("%s has no observations", h)
		}
	}
	if snap.Counters["wal.snapshots"] == 0 {
		t.Error("wal.snapshots counter not incremented")
	}
	if _, ok := snap.Gauges["wal.size_bytes"]; !ok {
		t.Error("wal.size_bytes gauge missing")
	}

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"wal_append_seconds", "wal_fsync_seconds", "wal_snapshots"} {
		if !strings.Contains(prom.String(), name) {
			t.Errorf("prometheus export missing %s", name)
		}
	}
}

// TestDurableStoreOverHTTP runs the recovered store behind the real HTTP
// server: submissions journal, a kill (no final snapshot) loses nothing,
// and the restarted platform serves the same dataset.
func TestDurableStoreOverHTTP(t *testing.T) {
	dir := t.TempDir()
	store, d, _, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(store, nil))
	defer srv.Close()
	client := NewClient(srv.URL)
	ctx := context.Background()

	if err := client.Submit(ctx, SubmissionRequest{Account: "ana", Task: 0, Value: -80, Time: at(0)}); err != nil {
		t.Fatal(err)
	}
	if err := client.RecordFeatureFingerprint(ctx, "ana", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := client.Submit(ctx, SubmissionRequest{Account: "bo", Task: 1, Value: -70, Time: at(1)}); err != nil {
		t.Fatal(err)
	}
	want := signature(t, store)
	if err := d.w.Close(); err != nil { // kill -9, not graceful shutdown
		t.Fatal(err)
	}

	store2, d2, stats, err := OpenDurable(dir, testTasks(3), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if stats.RecordsReplayed != 3 {
		t.Errorf("replayed %d records, want 3", stats.RecordsReplayed)
	}
	if got := signature(t, store2); got != want {
		t.Error("restarted platform lost acknowledged HTTP writes")
	}
}
