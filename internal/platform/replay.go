package platform

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"sybiltd/internal/mcs"
)

// ReplayOptions tunes ReplayDataset.
type ReplayOptions struct {
	// Pace, when positive, sleeps scaled wall-clock time between events:
	// a gap of G in the data waits G/Pace (Pace 60 replays an hour of
	// campaign per minute). Zero replays as fast as possible.
	Pace float64
	// OnEvent, when non-nil, is called after each successful submission
	// with the running count. Use it for progress reporting.
	OnEvent func(submitted int)
	// BatchSize, when above 1, delivers submissions through
	// Client.SubmitBatch in chunks of up to this many reports — one round
	// trip (and one WAL fsync on a durable platform) per chunk instead of
	// per report. Fingerprints are still recorded individually, before the
	// owning account's first buffered submission is flushed. 0 or 1 keeps
	// the one-request-per-report path.
	BatchSize int
}

// ReplayDataset feeds an archived campaign through the platform in global
// timestamp order, as if the crowd were live. Fingerprints are attached
// before an account's first submission (the sign-in order of the real
// flow). It returns the number of submissions delivered.
//
// Replaying lets an operator rebuild a production campaign on a fresh
// platform instance — for a post-incident audit of a suspected Sybil
// attack, or to compare aggregation methods on the same traffic.
func ReplayDataset(ctx context.Context, client *Client, ds *mcs.Dataset, opts ReplayOptions) (int, error) {
	if client == nil {
		return 0, errors.New("platform: replay needs a client")
	}
	if ds == nil {
		return 0, errors.New("platform: replay needs a dataset")
	}
	if err := ds.Validate(); err != nil {
		return 0, fmt.Errorf("platform: replay: %w", err)
	}

	type event struct {
		account string
		obs     mcs.Observation
		first   bool // first event of this account: attach fingerprint
	}
	var events []event
	for ai := range ds.Accounts {
		for _, o := range ds.Accounts[ai].Observations {
			events = append(events, event{account: ds.Accounts[ai].ID, obs: o})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		if !events[i].obs.Time.Equal(events[j].obs.Time) {
			return events[i].obs.Time.Before(events[j].obs.Time)
		}
		return events[i].account < events[j].account
	})
	seen := make(map[string]bool, ds.NumAccounts())
	for i := range events {
		if !seen[events[i].account] {
			events[i].first = true
			seen[events[i].account] = true
		}
	}

	fingerprints := make(map[string][]float64, ds.NumAccounts())
	for ai := range ds.Accounts {
		if fp := ds.Accounts[ai].Fingerprint; len(fp) > 0 {
			fingerprints[ds.Accounts[ai].ID] = fp
		}
	}

	var submitted int
	var batch []SubmissionRequest
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		results, err := client.SubmitBatch(ctx, batch)
		if err != nil {
			return fmt.Errorf("platform: replay batch: %w", err)
		}
		for i, res := range results {
			if err := res.Err(); err != nil {
				return fmt.Errorf("platform: replay submit %s/%d: %w", batch[i].Account, batch[i].Task, err)
			}
			submitted++
			if opts.OnEvent != nil {
				opts.OnEvent(submitted)
			}
		}
		batch = batch[:0]
		return nil
	}

	var prev time.Time
	for _, ev := range events {
		if err := ctx.Err(); err != nil {
			return submitted, fmt.Errorf("platform: replay interrupted: %w", err)
		}
		if opts.Pace > 0 && !prev.IsZero() {
			if gap := ev.obs.Time.Sub(prev); gap > 0 {
				wait := time.Duration(float64(gap) / opts.Pace)
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return submitted, fmt.Errorf("platform: replay interrupted: %w", ctx.Err())
				}
			}
		}
		prev = ev.obs.Time

		if ev.first {
			if fp, ok := fingerprints[ev.account]; ok {
				if err := client.RecordFeatureFingerprint(ctx, ev.account, fp); err != nil {
					return submitted, fmt.Errorf("platform: replay fingerprint %s: %w", ev.account, err)
				}
			}
		}
		req := SubmissionRequest{
			Account: ev.account,
			Task:    ev.obs.Task,
			Value:   ev.obs.Value,
			Time:    ev.obs.Time,
		}
		if opts.BatchSize > 1 {
			batch = append(batch, req)
			if len(batch) >= opts.BatchSize {
				if err := flush(); err != nil {
					return submitted, err
				}
			}
			continue
		}
		if err := client.Submit(ctx, req); err != nil {
			return submitted, fmt.Errorf("platform: replay submit %s/%d: %w", ev.account, ev.obs.Task, err)
		}
		submitted++
		if opts.OnEvent != nil {
			opts.OnEvent(submitted)
		}
	}
	if err := flush(); err != nil {
		return submitted, err
	}
	return submitted, nil
}
