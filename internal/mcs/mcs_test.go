package mcs

import (
	"testing"
	"time"
)

func ts(minute int) time.Time {
	return time.Date(2019, 3, 1, 10, minute, 0, 0, time.UTC)
}

func sampleDataset() *Dataset {
	ds := NewDataset(4)
	ds.AddAccount(Account{ID: "u1", Observations: []Observation{
		{Task: 0, Value: -84.48, Time: ts(0)},
		{Task: 1, Value: -82.11, Time: ts(2)},
		{Task: 2, Value: -75.16, Time: ts(10)},
		{Task: 3, Value: -72.71, Time: ts(13)},
	}})
	ds.AddAccount(Account{ID: "u2", Observations: []Observation{
		{Task: 1, Value: -72.27, Time: ts(4)},
		{Task: 2, Value: -77.21, Time: ts(6)},
	}})
	return ds
}

func TestNewDataset(t *testing.T) {
	ds := NewDataset(3)
	if ds.NumTasks() != 3 {
		t.Fatalf("NumTasks = %d, want 3", ds.NumTasks())
	}
	if ds.Tasks[0].Name != "T1" || ds.Tasks[2].Name != "T3" {
		t.Errorf("task names = %v", ds.Tasks)
	}
	if ds.Tasks[1].ID != 1 {
		t.Errorf("task ID = %d, want 1", ds.Tasks[1].ID)
	}
	if ds.NumAccounts() != 0 {
		t.Errorf("NumAccounts = %d, want 0", ds.NumAccounts())
	}
}

func TestValidate(t *testing.T) {
	ds := sampleDataset()
	if err := ds.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}

	dup := sampleDataset()
	dup.AddAccount(Account{ID: "u1"})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate ID should be rejected")
	}

	empty := sampleDataset()
	empty.AddAccount(Account{ID: ""})
	if err := empty.Validate(); err == nil {
		t.Error("empty ID should be rejected")
	}

	oob := sampleDataset()
	oob.Accounts[0].Observations = append(oob.Accounts[0].Observations, Observation{Task: 99})
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range task should be rejected")
	}

	multi := sampleDataset()
	multi.Accounts[0].Observations = append(multi.Accounts[0].Observations, Observation{Task: 0, Value: 1})
	if err := multi.Validate(); err == nil {
		t.Error("duplicate task per account should be rejected")
	}

	fp := sampleDataset()
	fp.Accounts[0].Fingerprint = []float64{1, 2, 3}
	fp.Accounts[1].Fingerprint = []float64{1, 2}
	if err := fp.Validate(); err == nil {
		t.Error("inconsistent fingerprint lengths should be rejected")
	}
	fp.Accounts[1].Fingerprint = []float64{4, 5, 6}
	if err := fp.Validate(); err != nil {
		t.Errorf("consistent fingerprints rejected: %v", err)
	}
}

func TestSubmitters(t *testing.T) {
	ds := sampleDataset()
	subs := ds.Submitters()
	if len(subs) != 4 {
		t.Fatalf("len = %d, want 4", len(subs))
	}
	if len(subs[0]) != 1 || subs[0][0] != 0 {
		t.Errorf("task 0 submitters = %v, want [0]", subs[0])
	}
	if len(subs[1]) != 2 {
		t.Errorf("task 1 submitters = %v, want two", subs[1])
	}
	if len(subs[3]) != 1 {
		t.Errorf("task 3 submitters = %v", subs[3])
	}
}

func TestValue(t *testing.T) {
	ds := sampleDataset()
	v, ok := ds.Value(1, 2)
	if !ok || v != -77.21 {
		t.Errorf("Value(1,2) = %v, %v", v, ok)
	}
	if _, ok := ds.Value(1, 0); ok {
		t.Error("Value for missing observation should be !ok")
	}
	if _, ok := ds.Value(99, 0); ok {
		t.Error("Value for bad account should be !ok")
	}
	if _, ok := ds.Value(-1, 0); ok {
		t.Error("Value for negative account should be !ok")
	}
}

func TestActiveness(t *testing.T) {
	ds := sampleDataset()
	if got := ds.Activeness(0); got != 1 {
		t.Errorf("activeness(u1) = %v, want 1", got)
	}
	if got := ds.Activeness(1); got != 0.5 {
		t.Errorf("activeness(u2) = %v, want 0.5", got)
	}
	if got := ds.Activeness(99); got != 0 {
		t.Errorf("activeness(bad) = %v, want 0", got)
	}
	if got := NewDataset(0).Activeness(0); got != 0 {
		t.Errorf("activeness with no tasks = %v, want 0", got)
	}
}

func TestTaskSetAndSortedObservations(t *testing.T) {
	a := Account{ID: "x", Observations: []Observation{
		{Task: 2, Time: ts(5)},
		{Task: 0, Time: ts(1)},
		{Task: 1, Time: ts(5)},
	}}
	set := a.TaskSet()
	if len(set) != 3 || !set[0] || !set[1] || !set[2] {
		t.Errorf("TaskSet = %v", set)
	}
	sorted := a.SortedObservations()
	if sorted[0].Task != 0 {
		t.Errorf("first sorted obs task = %d, want 0", sorted[0].Task)
	}
	// Tie on time: task order breaks it.
	if sorted[1].Task != 1 || sorted[2].Task != 2 {
		t.Errorf("tie-broken order = %v", sorted)
	}
	// Original untouched.
	if a.Observations[0].Task != 2 {
		t.Error("SortedObservations mutated the account")
	}
}

func TestTimeSpan(t *testing.T) {
	ds := sampleDataset()
	first, last, ok := ds.TimeSpan()
	if !ok {
		t.Fatal("TimeSpan not ok on non-empty dataset")
	}
	if !first.Equal(ts(0)) || !last.Equal(ts(13)) {
		t.Errorf("span = %v..%v", first, last)
	}
	if _, _, ok := NewDataset(2).TimeSpan(); ok {
		t.Error("TimeSpan of empty dataset should be !ok")
	}
}
