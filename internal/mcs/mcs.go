// Package mcs defines the mobile-crowdsensing data model shared by the
// truth-discovery algorithms, the account grouping methods, and the
// Sybil-resistant framework: tasks, accounts, timestamped observations, and
// the campaign dataset the platform aggregates (§III-A of the paper).
package mcs

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Task is one sensing task: measure a phenomenon (e.g. Wi-Fi signal
// strength in dBm) at a point of interest.
type Task struct {
	// ID is the task's index in its Dataset; assigned by the Dataset.
	ID int
	// Name is a human-readable label such as "POI-3".
	Name string
	// X, Y locate the task's POI in meters in the campaign's local frame.
	// They drive the mobility and radio simulators; the aggregation
	// algorithms never look at them.
	X, Y float64
}

// Observation is one sensing report: a numeric value for a task at a time.
type Observation struct {
	// Task is the task index within the Dataset.
	Task int
	// Value is the sensed numeric datum (e.g. RSSI in dBm).
	Value float64
	// Time is the submission timestamp. The adversary model assumes
	// timestamps cannot be fabricated (§III-C), so grouping methods may
	// trust them.
	Time time.Time
}

// Account is one platform account together with everything the platform
// collected from it: its sensing observations and the motion-sensor
// fingerprint captured at sign-in.
type Account struct {
	// ID is the account name, unique within a Dataset.
	ID string
	// Observations holds the account's reports, at most one per task
	// (each account may submit at most one datum per task, §III-C).
	Observations []Observation
	// Fingerprint is the feature vector extracted from the sign-in motion
	// capture; empty when fingerprinting is unavailable.
	Fingerprint []float64
}

// TaskSet returns the set of task indices the account reported on.
func (a *Account) TaskSet() map[int]bool {
	s := make(map[int]bool, len(a.Observations))
	for _, o := range a.Observations {
		s[o.Task] = true
	}
	return s
}

// SortedObservations returns the account's observations ordered by
// timestamp (stable on ties by task index). The receiver is not modified.
func (a *Account) SortedObservations() []Observation {
	obs := make([]Observation, len(a.Observations))
	copy(obs, a.Observations)
	sort.SliceStable(obs, func(i, j int) bool {
		if !obs[i].Time.Equal(obs[j].Time) {
			return obs[i].Time.Before(obs[j].Time)
		}
		return obs[i].Task < obs[j].Task
	})
	return obs
}

// Dataset is a complete crowdsensing campaign: the published tasks and the
// accounts (with their data) that participated. It is the input to every
// aggregation algorithm in this repository.
type Dataset struct {
	Tasks    []Task
	Accounts []Account
}

// NewDataset creates a dataset with m unnamed tasks.
func NewDataset(m int) *Dataset {
	ds := &Dataset{Tasks: make([]Task, m)}
	for j := range ds.Tasks {
		ds.Tasks[j] = Task{ID: j, Name: fmt.Sprintf("T%d", j+1)}
	}
	return ds
}

// AddAccount appends an account and returns its index.
func (ds *Dataset) AddAccount(a Account) int {
	ds.Accounts = append(ds.Accounts, a)
	return len(ds.Accounts) - 1
}

// NumTasks returns the number of tasks.
func (ds *Dataset) NumTasks() int { return len(ds.Tasks) }

// NumAccounts returns the number of accounts.
func (ds *Dataset) NumAccounts() int { return len(ds.Accounts) }

// Validate checks structural invariants: task indices in range, at most one
// observation per (account, task), unique account IDs, and fingerprints of
// consistent length (all empty or all equal length).
func (ds *Dataset) Validate() error {
	ids := make(map[string]bool, len(ds.Accounts))
	fpLen := -1
	for ai := range ds.Accounts {
		a := &ds.Accounts[ai]
		if a.ID == "" {
			return fmt.Errorf("mcs: account %d has empty ID", ai)
		}
		if ids[a.ID] {
			return fmt.Errorf("mcs: duplicate account ID %q", a.ID)
		}
		ids[a.ID] = true
		seen := make(map[int]bool, len(a.Observations))
		for _, o := range a.Observations {
			if o.Task < 0 || o.Task >= len(ds.Tasks) {
				return fmt.Errorf("mcs: account %q observation task %d out of range [0,%d)", a.ID, o.Task, len(ds.Tasks))
			}
			if seen[o.Task] {
				return fmt.Errorf("mcs: account %q has multiple observations for task %d", a.ID, o.Task)
			}
			seen[o.Task] = true
		}
		if len(a.Fingerprint) > 0 {
			if fpLen == -1 {
				fpLen = len(a.Fingerprint)
			} else if len(a.Fingerprint) != fpLen {
				return fmt.Errorf("mcs: account %q fingerprint length %d != %d", a.ID, len(a.Fingerprint), fpLen)
			}
		}
	}
	return nil
}

// Submitters returns, for each task index, the indices of accounts that
// reported on it (the paper's U_j), in ascending account order.
func (ds *Dataset) Submitters() [][]int {
	subs := make([][]int, len(ds.Tasks))
	for ai := range ds.Accounts {
		for _, o := range ds.Accounts[ai].Observations {
			if o.Task >= 0 && o.Task < len(subs) {
				subs[o.Task] = append(subs[o.Task], ai)
			}
		}
	}
	return subs
}

// Value returns account ai's reported value for task j and whether one
// exists.
func (ds *Dataset) Value(ai, j int) (float64, bool) {
	if ai < 0 || ai >= len(ds.Accounts) {
		return 0, false
	}
	for _, o := range ds.Accounts[ai].Observations {
		if o.Task == j {
			return o.Value, true
		}
	}
	return 0, false
}

// Activeness returns |T_i| / m for account ai (Eq. 9), the fraction of
// tasks the account reported on.
func (ds *Dataset) Activeness(ai int) float64 {
	if ai < 0 || ai >= len(ds.Accounts) || len(ds.Tasks) == 0 {
		return 0
	}
	return float64(len(ds.Accounts[ai].TaskSet())) / float64(len(ds.Tasks))
}

// TimeSpan returns the earliest and latest observation timestamps across
// all accounts. ok is false when the dataset holds no observations.
func (ds *Dataset) TimeSpan() (first, last time.Time, ok bool) {
	for ai := range ds.Accounts {
		for _, o := range ds.Accounts[ai].Observations {
			if !ok {
				first, last, ok = o.Time, o.Time, true
				continue
			}
			if o.Time.Before(first) {
				first = o.Time
			}
			if o.Time.After(last) {
				last = o.Time
			}
		}
	}
	return first, last, ok
}

// ErrNoObservations is returned by aggregation helpers when a dataset
// contains no data at all.
var ErrNoObservations = errors.New("mcs: dataset has no observations")
