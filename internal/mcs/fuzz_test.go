package mcs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeJSON checks that arbitrary input never panics the decoder and
// that anything it accepts is a valid dataset that round-trips.
func FuzzDecodeJSON(f *testing.F) {
	var buf bytes.Buffer
	ds := NewDataset(2)
	ds.AddAccount(Account{ID: "a", Observations: []Observation{{Task: 0, Value: 1}}})
	if err := ds.EncodeJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"tasks":[],"accounts":[]}`)
	f.Add(`{"version":2}`)
	f.Add(`not json at all`)
	f.Add(`{"version":1,"tasks":[{"id":0}],"accounts":[{"id":""}]}`)

	f.Fuzz(func(t *testing.T, input string) {
		ds, err := DecodeJSON(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid dataset: %v", err)
		}
		var out bytes.Buffer
		if err := ds.EncodeJSON(&out); err != nil {
			t.Fatalf("accepted dataset failed to re-encode: %v", err)
		}
		back, err := DecodeJSON(&out)
		if err != nil {
			t.Fatalf("re-encoded dataset failed to decode: %v", err)
		}
		if back.NumTasks() != ds.NumTasks() || back.NumAccounts() != ds.NumAccounts() {
			t.Fatal("round-trip changed the dataset shape")
		}
	})
}
