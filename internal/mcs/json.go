package mcs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// JSON wire format for campaign datasets, used by the platform's export
// endpoint and by applications that archive campaigns. The schema is
// stable: add fields, never repurpose them.

type datasetJSON struct {
	Version  int           `json:"version"`
	Tasks    []taskJSON    `json:"tasks"`
	Accounts []accountJSON `json:"accounts"`
}

type taskJSON struct {
	ID   int     `json:"id"`
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

type accountJSON struct {
	ID           string            `json:"id"`
	Observations []observationJSON `json:"observations,omitempty"`
	Fingerprint  []float64         `json:"fingerprint,omitempty"`
}

type observationJSON struct {
	Task  int       `json:"task"`
	Value float64   `json:"value"`
	Time  time.Time `json:"time"`
}

// datasetSchemaVersion identifies the current wire format.
const datasetSchemaVersion = 1

// EncodeJSON writes the dataset to w as versioned JSON.
func (ds *Dataset) EncodeJSON(w io.Writer) error {
	out := datasetJSON{Version: datasetSchemaVersion}
	out.Tasks = make([]taskJSON, len(ds.Tasks))
	for i, t := range ds.Tasks {
		out.Tasks[i] = taskJSON{ID: t.ID, Name: t.Name, X: t.X, Y: t.Y}
	}
	out.Accounts = make([]accountJSON, len(ds.Accounts))
	for i := range ds.Accounts {
		a := &ds.Accounts[i]
		aj := accountJSON{ID: a.ID}
		for _, o := range a.Observations {
			aj.Observations = append(aj.Observations, observationJSON{Task: o.Task, Value: o.Value, Time: o.Time})
		}
		if len(a.Fingerprint) > 0 {
			aj.Fingerprint = append([]float64(nil), a.Fingerprint...)
		}
		out.Accounts[i] = aj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("mcs: encode dataset: %w", err)
	}
	return nil
}

// DecodeJSON reads a dataset previously written by EncodeJSON and
// validates it.
func DecodeJSON(r io.Reader) (*Dataset, error) {
	var in datasetJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("mcs: decode dataset: %w", err)
	}
	if in.Version != datasetSchemaVersion {
		return nil, fmt.Errorf("mcs: unsupported dataset schema version %d (want %d)", in.Version, datasetSchemaVersion)
	}
	ds := &Dataset{Tasks: make([]Task, len(in.Tasks))}
	for i, t := range in.Tasks {
		ds.Tasks[i] = Task{ID: t.ID, Name: t.Name, X: t.X, Y: t.Y}
	}
	for _, aj := range in.Accounts {
		a := Account{ID: aj.ID}
		for _, o := range aj.Observations {
			a.Observations = append(a.Observations, Observation{Task: o.Task, Value: o.Value, Time: o.Time})
		}
		if len(aj.Fingerprint) > 0 {
			a.Fingerprint = append([]float64(nil), aj.Fingerprint...)
		}
		ds.Accounts = append(ds.Accounts, a)
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("mcs: decoded dataset invalid: %w", err)
	}
	return ds, nil
}
