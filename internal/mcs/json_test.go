package mcs

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	ds := sampleDataset()
	ds.Accounts[0].Fingerprint = []float64{1.5, -2.5, 3}
	ds.Accounts[1].Fingerprint = []float64{0, 1, 2}
	ds.Tasks[0].Name = "POI-A"
	ds.Tasks[0].X = 12.5
	ds.Tasks[0].Y = -3

	var buf bytes.Buffer
	if err := ds.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != ds.NumTasks() || back.NumAccounts() != ds.NumAccounts() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", back.NumTasks(), back.NumAccounts(), ds.NumTasks(), ds.NumAccounts())
	}
	if back.Tasks[0].Name != "POI-A" || back.Tasks[0].X != 12.5 || back.Tasks[0].Y != -3 {
		t.Errorf("task 0 = %+v", back.Tasks[0])
	}
	for ai := range ds.Accounts {
		want := ds.Accounts[ai]
		got := back.Accounts[ai]
		if got.ID != want.ID {
			t.Fatalf("account %d ID %q vs %q", ai, got.ID, want.ID)
		}
		if len(got.Observations) != len(want.Observations) {
			t.Fatalf("account %d observation count", ai)
		}
		for k := range want.Observations {
			if got.Observations[k].Value != want.Observations[k].Value ||
				!got.Observations[k].Time.Equal(want.Observations[k].Time) {
				t.Errorf("account %d obs %d differs", ai, k)
			}
		}
		if len(got.Fingerprint) != len(want.Fingerprint) {
			t.Errorf("account %d fingerprint length", ai)
		}
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader("{nope")); err == nil {
		t.Error("garbage should error")
	}
	if _, err := DecodeJSON(strings.NewReader(`{"version": 99, "tasks": [], "accounts": []}`)); err == nil {
		t.Error("wrong schema version should error")
	}
	// Structurally valid JSON but semantically invalid dataset.
	bad := `{"version":1,"tasks":[{"id":0,"name":"T1"}],"accounts":[{"id":"a","observations":[{"task":5,"value":1,"time":"2026-07-01T00:00:00Z"}]}]}`
	if _, err := DecodeJSON(strings.NewReader(bad)); err == nil {
		t.Error("out-of-range task should be rejected by validation")
	}
}

func TestEncodeJSONEmptyDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDataset(2).EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != 2 || back.NumAccounts() != 0 {
		t.Errorf("shape = %d tasks, %d accounts", back.NumTasks(), back.NumAccounts())
	}
}
