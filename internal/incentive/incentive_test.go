package incentive

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func auction() Auction { return Auction{TaskValue: 10, NumTasks: 6} }

func TestValidation(t *testing.T) {
	if _, err := (Auction{TaskValue: 0, NumTasks: 3}).Run(nil); err == nil {
		t.Error("zero TaskValue should error")
	}
	if _, err := (Auction{TaskValue: 1, NumTasks: 0}).Run(nil); err == nil {
		t.Error("zero NumTasks should error")
	}
	if _, err := auction().Run([]Offer{{User: "a", Tasks: []int{0}, Bid: 0}}); err == nil {
		t.Error("zero bid should error")
	}
	if _, err := auction().Run([]Offer{{User: "a", Tasks: []int{9}, Bid: 1}}); err == nil {
		t.Error("out-of-range task should error")
	}
}

func TestGreedySelection(t *testing.T) {
	offers := []Offer{
		{User: "cheap-wide", Tasks: []int{0, 1, 2}, Bid: 5}, // utility 25
		{User: "pricey", Tasks: []int{3}, Bid: 50},          // utility -40
		{User: "narrow", Tasks: []int{4, 5}, Bid: 12},       // utility 8
		{User: "redundant", Tasks: []int{0, 1, 2}, Bid: 1},  // 0 marginal after cheap-wide... but cheaper!
	}
	out, err := auction().Run(offers)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: redundant has utility 29 (it bids less) -> actually both
	// cover {0,1,2}; redundant (bid 1) has utility 29 > cheap-wide 25, so
	// redundant wins first; then cheap-wide has 0 marginal -> excluded.
	if !out.IsWinner(3) {
		t.Errorf("lowest-bid coverer should win: %+v", out.Winners)
	}
	if out.IsWinner(0) {
		t.Error("redundant coverage should not be selected twice")
	}
	if out.IsWinner(1) {
		t.Error("negative-utility offer should lose")
	}
	if !out.IsWinner(2) {
		t.Error("positive-utility narrow offer should win")
	}
	if len(out.Covered) != 5 {
		t.Errorf("covered = %v", out.Covered)
	}
}

func TestPaymentsIndividuallyRational(t *testing.T) {
	offers := []Offer{
		{User: "a", Tasks: []int{0, 1}, Bid: 4},
		{User: "b", Tasks: []int{1, 2}, Bid: 6},
		{User: "c", Tasks: []int{3, 4, 5}, Bid: 9},
		{User: "d", Tasks: []int{0, 5}, Bid: 3},
	}
	out, err := auction().Run(offers)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) == 0 {
		t.Fatal("no winners")
	}
	for k, w := range out.Winners {
		if out.Payments[k] < offers[w].Bid-1e-9 {
			t.Errorf("winner %s paid %.2f below bid %.2f", offers[w].User, out.Payments[k], offers[w].Bid)
		}
	}
	if out.TotalPayment() <= 0 {
		t.Error("total payment should be positive")
	}
}

// Property: individual rationality holds on random instances, winners'
// marginal values exceed their bids at selection time, and the mechanism
// is deterministic.
func TestAuctionPropertiesRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Auction{TaskValue: 5 + rng.Float64()*10, NumTasks: 4 + rng.Intn(8)}
		n := 1 + rng.Intn(10)
		offers := make([]Offer, n)
		for i := range offers {
			k := 1 + rng.Intn(a.NumTasks)
			perm := rng.Perm(a.NumTasks)[:k]
			offers[i] = Offer{
				User:  string(rune('a' + i)),
				Tasks: perm,
				Bid:   0.5 + rng.Float64()*30,
			}
		}
		out1, err := a.Run(offers)
		if err != nil {
			return false
		}
		out2, err := a.Run(offers)
		if err != nil {
			return false
		}
		if len(out1.Winners) != len(out2.Winners) {
			return false
		}
		for k := range out1.Winners {
			if out1.Winners[k] != out2.Winners[k] || out1.Payments[k] != out2.Payments[k] {
				return false
			}
		}
		for k, w := range out1.Winners {
			if out1.Payments[k] < offers[w].Bid-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property (truthfulness spot-check): a winner that raises its bid (still
// winning or not) never increases its utility payment − true cost, and a
// loser cannot win profitably by underbidding below its cost.
func TestTruthfulnessSpotCheck(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Auction{TaskValue: 10, NumTasks: 6}
		n := 2 + rng.Intn(6)
		offers := make([]Offer, n)
		costs := make([]float64, n)
		for i := range offers {
			k := 1 + rng.Intn(4)
			costs[i] = 1 + rng.Float64()*25
			offers[i] = Offer{
				User:  string(rune('a' + i)),
				Tasks: rng.Perm(a.NumTasks)[:k],
				Bid:   costs[i], // truthful
			}
		}
		truthOut, err := a.Run(offers)
		if err != nil {
			return false
		}
		utility := func(out Outcome, i int) float64 {
			for k, w := range out.Winners {
				if w == i {
					return out.Payments[k] - costs[i]
				}
			}
			return 0
		}
		// Perturb one random bidder's bid.
		i := rng.Intn(n)
		lie := costs[i] * (0.3 + rng.Float64()*2)
		lied := make([]Offer, n)
		copy(lied, offers)
		lied[i].Bid = lie
		liedOut, err := a.Run(lied)
		if err != nil {
			return false
		}
		// Allow tiny numeric slack.
		return utility(liedOut, i) <= utility(truthOut, i)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSybilOverlapSuppressed(t *testing.T) {
	// Five Sybil accounts with the SAME task set: at most one can win,
	// because the rest have zero marginal value — the paper's Remarks
	// argument, mechanized.
	offers := []Offer{
		{User: "honest1", Tasks: []int{0, 1}, Bid: 3},
		{User: "honest2", Tasks: []int{2, 3}, Bid: 3},
	}
	for s := 0; s < 5; s++ {
		offers = append(offers, Offer{User: "sybil" + string(rune('1'+s)), Tasks: []int{4, 5}, Bid: 2})
	}
	out, err := auction().Run(offers)
	if err != nil {
		t.Fatal(err)
	}
	var sybilWinners int
	for _, w := range out.Winners {
		if w >= 2 {
			sybilWinners++
		}
	}
	if sybilWinners != 1 {
		t.Errorf("sybil winners = %d, want exactly 1", sybilWinners)
	}
	names := out.WinnersByUser(offers)
	if len(names) != 3 {
		t.Errorf("winners = %v", names)
	}
}

func TestNoOffersNoWinners(t *testing.T) {
	out, err := auction().Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Winners) != 0 || out.TotalPayment() != 0 {
		t.Errorf("empty auction outcome = %+v", out)
	}
}

func TestDepthAwareRedundancy(t *testing.T) {
	// With diminishing depth values the auction keeps up to 3 coverers per
	// task — but still at most a few of five identical Sybil offers.
	a := Auction{NumTasks: 2, DepthValues: []float64{10, 6, 3}}
	var offers []Offer
	for s := 0; s < 5; s++ {
		offers = append(offers, Offer{User: "sybil" + string(rune('1'+s)), Tasks: []int{0, 1}, Bid: 4})
	}
	out, err := a.Run(offers)
	if err != nil {
		t.Fatal(err)
	}
	// Depth values 10, 6 exceed bid 4 per task (2 tasks: 20, 12); depth 3
	// gives 6 > 4 too; depth 4+ gives 0. So exactly 3 of 5 win.
	if len(out.Winners) != 3 {
		t.Errorf("winners = %d, want 3 (depth-limited)", len(out.Winners))
	}
	for k, w := range out.Winners {
		if out.Payments[k] < offers[w].Bid-1e-9 {
			t.Errorf("winner %d paid below bid", w)
		}
	}
}

func TestDepthValuesValidation(t *testing.T) {
	if _, err := (Auction{NumTasks: 2, DepthValues: []float64{5, 10}}).Run(nil); err == nil {
		t.Error("increasing depth values should error")
	}
	if _, err := (Auction{NumTasks: 2, DepthValues: []float64{5, 0}}).Run(nil); err == nil {
		t.Error("non-positive depth value should error")
	}
	// DepthValues alone (no TaskValue) is valid.
	if _, err := (Auction{NumTasks: 2, DepthValues: []float64{5}}).Run(nil); err != nil {
		t.Errorf("depth-only auction rejected: %v", err)
	}
}
