// Package incentive implements the user-selection substrate the paper's
// Remarks invoke (§IV-C): an MSensing-style reverse auction (Yang, Xue,
// Fang, Tang — MobiCom 2012, reference [32]) in which users declare the
// task set they can perform and a bid (their cost), and the platform
// greedily selects the users whose marginal task coverage exceeds their
// bid, paying each winner a critical (truthful) price.
//
// The paper observes that such selection also suppresses Sybil accounts:
// once one of an attacker's accounts is selected, its siblings' task sets
// add no marginal value, so they are unlikely to be selected — reducing
// the false positives and the attack surface of the grouping methods.
// The ext-selection experiment quantifies exactly that effect.
package incentive

import (
	"errors"
	"fmt"
	"sort"
)

// Offer is one user's declared contribution: the tasks it can perform and
// the payment it demands.
type Offer struct {
	// User identifies the offering account.
	User string
	// Tasks are the task indices the user offers to perform.
	Tasks []int
	// Bid is the user's asking price (its claimed cost), > 0.
	Bid float64
}

// Outcome is the auction result.
type Outcome struct {
	// Winners lists selected offers' indices in selection order.
	Winners []int
	// Payments[k] is the payment to Winners[k]; always >= the winner's bid
	// (individual rationality).
	Payments []float64
	// Covered is the set of tasks covered by the winners.
	Covered map[int]bool
}

// IsWinner reports whether offer index i won.
func (o Outcome) IsWinner(i int) bool {
	for _, w := range o.Winners {
		if w == i {
			return true
		}
	}
	return false
}

// Auction is an MSensing-style reverse auction. TaskValue is the
// platform's value for each distinct covered task.
type Auction struct {
	// TaskValue is the value of covering one task; must be > 0.
	TaskValue float64
	// NumTasks bounds valid task indices.
	NumTasks int
	// DepthValues, when non-empty, makes the auction redundancy-aware: the
	// k-th account covering a task contributes DepthValues[k-1] (0 beyond
	// the list). Plain MSensing is DepthValues = [TaskValue]. Diminishing
	// depth values (e.g. 10, 6, 3) buy the measurement redundancy that
	// truth discovery needs while still suppressing fully redundant Sybil
	// siblings — see the ext-selection experiment.
	DepthValues []float64
}

// depthValues returns the effective per-depth values.
func (a Auction) depthValues() []float64 {
	if len(a.DepthValues) > 0 {
		return a.DepthValues
	}
	return []float64{a.TaskValue}
}

// marginal returns the value the offer adds given per-task coverage counts.
func (a Auction) marginal(offer Offer, coverage map[int]int) float64 {
	depths := a.depthValues()
	var value float64
	seen := make(map[int]bool, len(offer.Tasks))
	for _, t := range offer.Tasks {
		if seen[t] {
			continue
		}
		seen[t] = true
		if c := coverage[t]; c < len(depths) {
			value += depths[c]
		}
	}
	return value
}

// validate checks the auction parameters and offers.
func (a Auction) validate(offers []Offer) error {
	if a.TaskValue <= 0 && len(a.DepthValues) == 0 {
		return errors.New("incentive: TaskValue must be positive")
	}
	for k, v := range a.DepthValues {
		if v <= 0 {
			return fmt.Errorf("incentive: DepthValues[%d] must be positive", k)
		}
		if k > 0 && v > a.DepthValues[k-1] {
			return fmt.Errorf("incentive: DepthValues must be non-increasing (got %v)", a.DepthValues)
		}
	}
	if a.NumTasks <= 0 {
		return errors.New("incentive: NumTasks must be positive")
	}
	for i, o := range offers {
		if o.Bid <= 0 {
			return fmt.Errorf("incentive: offer %d (%s) has non-positive bid", i, o.User)
		}
		for _, t := range o.Tasks {
			if t < 0 || t >= a.NumTasks {
				return fmt.Errorf("incentive: offer %d (%s) task %d out of range [0,%d)", i, o.User, t, a.NumTasks)
			}
		}
	}
	return nil
}

// selectGreedy runs the MSensing winner-selection loop over the offers
// whose index passes include, returning winner indices in selection order.
func (a Auction) selectGreedy(offers []Offer, include func(int) bool) []int {
	coverage := make(map[int]int)
	chosen := make(map[int]bool)
	var winners []int
	for {
		best := -1
		bestUtil := 0.0
		for i, o := range offers {
			if chosen[i] || (include != nil && !include(i)) {
				continue
			}
			util := a.marginal(o, coverage) - o.Bid
			// Deterministic tie-break: higher utility, then lower index.
			if best == -1 || util > bestUtil+1e-12 {
				if util > 0 {
					best = i
					bestUtil = util
				}
			}
		}
		if best == -1 {
			break
		}
		chosen[best] = true
		winners = append(winners, best)
		addCoverage(coverage, offers[best])
	}
	return winners
}

// addCoverage bumps the coverage count of each distinct task in the offer.
func addCoverage(coverage map[int]int, o Offer) {
	seen := make(map[int]bool, len(o.Tasks))
	for _, t := range o.Tasks {
		if !seen[t] {
			coverage[t]++
			seen[t] = true
		}
	}
}

// Run executes winner selection and critical payments.
//
// Payment rule (MSensing): for winner i, rerun the greedy selection over
// the other offers; at each round j of that run, i could have replaced the
// round's pick by bidding up to
//
//	min( ν_i(S) − (ν_j(S) − b_j), ν_i(S) )
//
// where S is the coverage before round j; the payment is the maximum of
// those thresholds (including the terminal round where i's marginal value
// alone bounds the bid). This makes truthful bidding a dominant strategy
// and guarantees p_i >= b_i for winners.
func (a Auction) Run(offers []Offer) (Outcome, error) {
	if err := a.validate(offers); err != nil {
		return Outcome{}, err
	}
	winners := a.selectGreedy(offers, nil)
	out := Outcome{Covered: make(map[int]bool)}
	for _, w := range winners {
		out.Winners = append(out.Winners, w)
		for _, t := range offers[w].Tasks {
			out.Covered[t] = true
		}
	}

	for _, w := range winners {
		out.Payments = append(out.Payments, a.criticalPayment(offers, w))
	}
	return out, nil
}

// criticalPayment computes winner i's payment per the rule above.
func (a Auction) criticalPayment(offers []Offer, i int) float64 {
	coverage := make(map[int]int)
	chosen := make(map[int]bool)
	payment := 0.0
	for {
		// The round's pick among offers other than i.
		best := -1
		bestUtil := 0.0
		for j, o := range offers {
			if j == i || chosen[j] {
				continue
			}
			util := a.marginal(o, coverage) - o.Bid
			if best == -1 || util > bestUtil+1e-12 {
				if util > 0 {
					best = j
					bestUtil = util
				}
			}
		}
		vi := a.marginal(offers[i], coverage)
		if best == -1 {
			// Terminal round: i wins by bidding anything below its
			// marginal value.
			if vi > payment {
				payment = vi
			}
			break
		}
		// i could displace this round's pick by bidding below the
		// threshold; cap at i's marginal value.
		threshold := vi - bestUtil
		if vi < threshold {
			threshold = vi
		}
		if threshold > payment {
			payment = threshold
		}
		chosen[best] = true
		addCoverage(coverage, offers[best])
	}
	return payment
}

// TotalPayment sums the outcome's payments.
func (o Outcome) TotalPayment() float64 {
	var sum float64
	for _, p := range o.Payments {
		sum += p
	}
	return sum
}

// WinnersByUser returns the winning users' names, sorted.
func (o Outcome) WinnersByUser(offers []Offer) []string {
	names := make([]string, 0, len(o.Winners))
	for _, w := range o.Winners {
		names = append(names, offers[w].User)
	}
	sort.Strings(names)
	return names
}
