// Package fingerprint turns raw motion-sensor recordings into the
// fixed-length feature vectors used by the AG-FP account grouping method.
//
// Following §IV-C of the paper, a recording is viewed as four scalar
// streams — the orientation-independent accelerometer magnitude |a(t)| and
// the three gyroscope axes ωx(t), ωy(t), ωz(t) — and each stream is
// characterized by the 20 features of Table II (9 temporal + 11 spectral),
// yielding an 80-dimensional device fingerprint.
package fingerprint

import (
	"fmt"

	"sybiltd/internal/mems"
	"sybiltd/internal/signal"
	"sybiltd/internal/spectral"
)

// FeaturesPerStream is the number of features extracted per sensor stream
// (Table II: 9 temporal + 11 spectral).
const FeaturesPerStream = 20

// NumStreams is the number of scalar streams per recording:
// |a|, ωx, ωy, ωz.
const NumStreams = 4

// VectorLen is the total fingerprint dimensionality.
const VectorLen = FeaturesPerStream * NumStreams

// BrightnessCutoffHz is the cut-off used for the spectral brightness
// feature (#18). Hand tremor concentrates below ~15 Hz, so energy above
// this threshold is dominated by the chip's noise floor — a strongly
// device-dependent quantity.
const BrightnessCutoffHz = 15

// FeatureNames returns the 20 per-stream feature names in extraction order.
func FeatureNames() []string {
	return []string{
		"mean", "stddev", "skewness", "kurtosis", "rms",
		"max", "min", "zcr", "nonneg_count",
		"spec_centroid", "spec_spread", "spec_skewness", "spec_kurtosis",
		"spec_flatness", "spec_irregularity", "spec_entropy", "spec_rolloff",
		"spec_brightness", "spec_rms", "spec_roughness",
	}
}

// StreamNames returns the four stream names in extraction order.
func StreamNames() []string {
	return []string{"accel_mag", "gyro_x", "gyro_y", "gyro_z"}
}

// Vector is a device fingerprint: VectorLen features laid out stream-major
// (all 20 features of |a|, then of ωx, ωy, ωz).
type Vector []float64

// Extract computes the fingerprint vector of a recording.
func Extract(rec mems.Recording) Vector {
	streams := [NumStreams][]float64{
		signal.Magnitude3(rec.AccelX, rec.AccelY, rec.AccelZ),
		rec.GyroX,
		rec.GyroY,
		rec.GyroZ,
	}
	v := make(Vector, 0, VectorLen)
	for _, s := range streams {
		v = append(v, streamFeatures(s, rec.SampleRate)...)
	}
	return v
}

// streamFeatures computes the 20 Table II features of one scalar stream.
func streamFeatures(xs []float64, sampleRate float64) []float64 {
	mx, err := signal.Max(xs)
	if err != nil {
		mx = 0
	}
	mn, err := signal.Min(xs)
	if err != nil {
		mn = 0
	}
	sp := signal.PowerSpectrum(xs, sampleRate, signal.Hann)
	return []float64{
		signal.Mean(xs),
		signal.StdDev(xs),
		signal.Skewness(xs),
		signal.Kurtosis(xs),
		signal.RMS(xs),
		mx,
		mn,
		signal.ZeroCrossingRate(xs),
		float64(signal.NonNegativeCount(xs)) / float64(max(len(xs), 1)),
		spectral.Centroid(sp),
		spectral.Spread(sp),
		spectral.Skewness(sp),
		spectral.Kurtosis(sp),
		spectral.Flatness(sp),
		spectral.Irregularity(sp),
		spectral.Entropy(sp),
		spectral.Rolloff(sp, spectral.DefaultRolloffFraction),
		spectral.Brightness(sp, BrightnessCutoffHz),
		spectral.RMS(sp),
		spectral.Roughness(sp),
	}
}

// Matrix is a set of fingerprint vectors, one row per account.
type Matrix [][]float64

// NewMatrix stacks vectors into a matrix, validating that all rows share
// the fingerprint dimensionality.
func NewMatrix(vs []Vector) (Matrix, error) {
	m := make(Matrix, len(vs))
	for i, v := range vs {
		if len(v) != VectorLen {
			return nil, fmt.Errorf("fingerprint: row %d has %d features, want %d", i, len(v), VectorLen)
		}
		m[i] = v
	}
	return m, nil
}

// Standardize z-scores every column of m in place-safe fashion (a new
// matrix is returned; m is unchanged). Columns with zero variance become
// all-zero, so constant features cannot dominate nor produce NaNs.
//
// Standardization matters because Table II features live on wildly
// different scales (counts vs Hz vs dimensionless ratios); k-means on raw
// features would be dominated by the largest-scale column.
func Standardize(m Matrix) Matrix {
	if len(m) == 0 {
		return Matrix{}
	}
	rows, cols := len(m), len(m[0])
	out := make(Matrix, rows)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	col := make([]float64, rows)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			col[i] = m[i][j]
		}
		mu := signal.Mean(col)
		sigma := signal.StdDev(col)
		if sigma == 0 {
			continue // leave zeros
		}
		for i := 0; i < rows; i++ {
			out[i][j] = (m[i][j] - mu) / sigma
		}
	}
	return out
}
