package fingerprint

import (
	"math"
	"math/rand"
	"testing"

	"sybiltd/internal/mems"
)

func capture(t *testing.T, model mems.Model, devSeed, capSeed int64) mems.Recording {
	t.Helper()
	d := mems.NewDevice(model, 1, rand.New(rand.NewSource(devSeed)))
	return d.Capture(mems.DefaultCaptureSpec(), rand.New(rand.NewSource(capSeed)))
}

func TestExtractShape(t *testing.T) {
	v := Extract(capture(t, mems.ModelIPhone6S, 1, 2))
	if len(v) != VectorLen {
		t.Fatalf("len = %d, want %d", len(v), VectorLen)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("feature %d = %v, want finite", i, x)
		}
	}
	if len(FeatureNames()) != FeaturesPerStream {
		t.Errorf("FeatureNames len = %d, want %d", len(FeatureNames()), FeaturesPerStream)
	}
	if len(StreamNames()) != NumStreams {
		t.Errorf("StreamNames len = %d, want %d", len(StreamNames()), NumStreams)
	}
}

func TestSameDeviceCloserThanDifferentModel(t *testing.T) {
	// Fingerprints of the same device (different captures) must be closer
	// than fingerprints of devices of different models. Distances are
	// computed on standardized features, as the grouping pipeline does.
	rng := rand.New(rand.NewSource(3))
	d1 := mems.NewDevice(mems.ModelIPhone6S, 1, rng)
	d2 := mems.NewDevice(mems.ModelNexus5, 1, rng)
	capRng := rand.New(rand.NewSource(4))
	vecs := []Vector{
		Extract(d1.Capture(mems.DefaultCaptureSpec(), capRng)),
		Extract(d1.Capture(mems.DefaultCaptureSpec(), capRng)),
		Extract(d2.Capture(mems.DefaultCaptureSpec(), capRng)),
	}
	m, err := NewMatrix(vecs)
	if err != nil {
		t.Fatal(err)
	}
	std := Standardize(m)
	within := euclid(std[0], std[1])
	between := euclid(std[0], std[2])
	if within >= between {
		t.Errorf("within-device distance %v should be < between-model %v", within, between)
	}
}

func euclid(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func TestNewMatrixRejectsBadRows(t *testing.T) {
	if _, err := NewMatrix([]Vector{make(Vector, 3)}); err == nil {
		t.Error("NewMatrix should reject rows of wrong length")
	}
	m, err := NewMatrix(nil)
	if err != nil || len(m) != 0 {
		t.Errorf("NewMatrix(nil) = %v, %v; want empty", m, err)
	}
}

func TestStandardize(t *testing.T) {
	m := Matrix{
		{1, 10, 5},
		{3, 10, 7},
		{5, 10, 9},
	}
	std := Standardize(m)
	// Column 0: mean 3, population std sqrt(8/3).
	wantStd := math.Sqrt(8.0 / 3.0)
	if got := std[0][0]; math.Abs(got-(-2/wantStd)) > 1e-9 {
		t.Errorf("std[0][0] = %v", got)
	}
	// Constant column becomes zeros.
	for i := range std {
		if std[i][1] != 0 {
			t.Errorf("constant column row %d = %v, want 0", i, std[i][1])
		}
	}
	// Original matrix unchanged.
	if m[0][0] != 1 {
		t.Error("Standardize mutated its input")
	}
	// Each non-constant column has ~zero mean.
	for _, j := range []int{0, 2} {
		var mu float64
		for i := range std {
			mu += std[i][j]
		}
		mu /= float64(len(std))
		if math.Abs(mu) > 1e-9 {
			t.Errorf("column %d mean = %v, want 0", j, mu)
		}
	}
	if got := Standardize(Matrix{}); len(got) != 0 {
		t.Errorf("Standardize(empty) = %v", got)
	}
}

func TestExtractDeterministicGivenSeeds(t *testing.T) {
	v1 := Extract(capture(t, mems.ModelIPhone7, 5, 6))
	v2 := Extract(capture(t, mems.ModelIPhone7, 5, 6))
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("feature %d differs: %v vs %v", i, v1[i], v2[i])
		}
	}
}
