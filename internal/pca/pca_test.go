package pca

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 2); err == nil {
		t.Error("empty data should error")
	}
	if _, err := Fit([][]float64{{}}, 2); err == nil {
		t.Error("zero-dim data should error")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, 2); err == nil {
		t.Error("ragged data should error")
	}
}

func TestFitRecoversDominantDirection(t *testing.T) {
	// Points along y = 2x with tiny noise: PC1 must align with (1,2)/sqrt5.
	rng := rand.New(rand.NewSource(1))
	data := make([][]float64, 200)
	for i := range data {
		x := rng.NormFloat64() * 5
		data[i] = []float64{x + rng.NormFloat64()*0.01, 2*x + rng.NormFloat64()*0.01}
	}
	m, err := Fit(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	pc1 := m.Components[0]
	// Direction up to sign.
	want := []float64{1 / math.Sqrt(5), 2 / math.Sqrt(5)}
	dot := pc1[0]*want[0] + pc1[1]*want[1]
	if math.Abs(math.Abs(dot)-1) > 1e-3 {
		t.Errorf("PC1 = %v, want ±%v (|dot|=%v)", pc1, want, math.Abs(dot))
	}
	if m.Variances[0] <= m.Variances[1] {
		t.Errorf("variances not ordered: %v", m.Variances)
	}
	ratio := m.ExplainedVarianceRatio()
	if ratio[0] < 0.99 {
		t.Errorf("PC1 explained ratio = %v, want > 0.99", ratio[0])
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([][]float64, 50)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64() * 2, rng.NormFloat64() * 3, rng.NormFloat64()}
	}
	m, err := Fit(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Components) != 4 {
		t.Fatalf("kept %d components, want 4", len(m.Components))
	}
	for i := range m.Components {
		for j := i; j < len(m.Components); j++ {
			var dot float64
			for k := range m.Components[i] {
				dot += m.Components[i][k] * m.Components[j][k]
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("<PC%d, PC%d> = %v, want %v", i+1, j+1, dot, want)
			}
		}
	}
}

func TestTransform(t *testing.T) {
	data := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	m, err := Fit(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := m.Transform(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj) != 4 || len(proj[0]) != 1 {
		t.Fatalf("proj shape = %dx%d, want 4x1", len(proj), len(proj[0]))
	}
	// Projections of collinear equally spaced points are equally spaced and
	// centered.
	var sum float64
	for _, p := range proj {
		sum += p[0]
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("projections not centered: sum = %v", sum)
	}
	gap01 := proj[1][0] - proj[0][0]
	gap12 := proj[2][0] - proj[1][0]
	if math.Abs(gap01-gap12) > 1e-9 {
		t.Errorf("projections not equally spaced: %v", proj)
	}
	// Wrong width rejected.
	if _, err := m.Transform([][]float64{{1, 2, 3}}); err == nil {
		t.Error("Transform should reject mismatched width")
	}
}

func TestTransformPreservesDistances(t *testing.T) {
	// Full-rank PCA is a rotation: pairwise distances are preserved.
	rng := rand.New(rand.NewSource(3))
	data := make([][]float64, 20)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	m, err := Fit(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := m.Transform(data)
	if err != nil {
		t.Fatal(err)
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	for i := 0; i < len(data); i++ {
		for j := i + 1; j < len(data); j++ {
			d0 := dist(data[i], data[j])
			d1 := dist(proj[i], proj[j])
			if math.Abs(d0-d1) > 1e-8 {
				t.Fatalf("distance (%d,%d) changed: %v -> %v", i, j, d0, d1)
			}
		}
	}
}

func TestConstantData(t *testing.T) {
	data := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	m, err := Fit(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Variances {
		if v != 0 {
			t.Errorf("variance of constant data = %v, want 0", v)
		}
	}
	for _, r := range m.ExplainedVarianceRatio() {
		if r != 0 {
			t.Errorf("explained ratio of constant data = %v, want 0", r)
		}
	}
}

func TestSingleObservation(t *testing.T) {
	m, err := Fit([][]float64{{1, 2, 3}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := m.Transform([][]float64{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range proj[0] {
		if math.Abs(v) > 1e-9 {
			t.Errorf("projection of the mean itself = %v, want 0", v)
		}
	}
}

func BenchmarkFit80Dim(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	data := make([][]float64, 60)
	for i := range data {
		row := make([]float64, 80)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		data[i] = row
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(data, 2); err != nil {
			b.Fatal(err)
		}
	}
}
