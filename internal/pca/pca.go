// Package pca implements principal component analysis via a cyclic Jacobi
// eigendecomposition of the sample covariance matrix. It is used to project
// 80-dimensional device fingerprints onto the first two principal
// components, reproducing the feature-space scatter plots of Figs. 2 and 8.
package pca

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned when PCA is attempted on an empty matrix.
var ErrNoData = errors.New("pca: no data")

// Model is a fitted PCA basis.
type Model struct {
	// Mean is the per-column mean of the training data.
	Mean []float64
	// Components[c] is the c-th principal axis (unit length), ordered by
	// decreasing eigenvalue.
	Components [][]float64
	// Variances[c] is the eigenvalue (variance along component c).
	Variances []float64
}

// Fit computes a PCA basis from data (rows = observations, columns =
// features), keeping at most maxComponents components (0 keeps all).
func Fit(data [][]float64, maxComponents int) (*Model, error) {
	n := len(data)
	if n == 0 {
		return nil, ErrNoData
	}
	dim := len(data[0])
	if dim == 0 {
		return nil, ErrNoData
	}
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("pca: row %d has %d columns, want %d", i, len(row), dim)
		}
	}

	mean := make([]float64, dim)
	for _, row := range data {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	// Sample covariance matrix (divide by n-1; by n when n == 1).
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	denom := float64(n - 1)
	if n == 1 {
		denom = 1
	}
	centered := make([]float64, dim)
	for _, row := range data {
		for j := range row {
			centered[j] = row[j] - mean[j]
		}
		for a := 0; a < dim; a++ {
			ca := centered[a]
			if ca == 0 {
				continue
			}
			for b := a; b < dim; b++ {
				cov[a][b] += ca * centered[b]
			}
		}
	}
	for a := 0; a < dim; a++ {
		for b := a; b < dim; b++ {
			cov[a][b] /= denom
			cov[b][a] = cov[a][b]
		}
	}

	values, vectors := jacobiEigen(cov)

	// Order by decreasing eigenvalue.
	order := make([]int, dim)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return values[order[i]] > values[order[j]] })

	keep := dim
	if maxComponents > 0 && maxComponents < dim {
		keep = maxComponents
	}
	m := &Model{
		Mean:       mean,
		Components: make([][]float64, keep),
		Variances:  make([]float64, keep),
	}
	for c := 0; c < keep; c++ {
		idx := order[c]
		comp := make([]float64, dim)
		for r := 0; r < dim; r++ {
			comp[r] = vectors[r][idx]
		}
		m.Components[c] = comp
		v := values[idx]
		if v < 0 {
			v = 0 // tiny negative eigenvalues are numerical noise
		}
		m.Variances[c] = v
	}
	return m, nil
}

// Transform projects each row of data onto the model's components.
func (m *Model) Transform(data [][]float64) ([][]float64, error) {
	out := make([][]float64, len(data))
	for i, row := range data {
		if len(row) != len(m.Mean) {
			return nil, fmt.Errorf("pca: row %d has %d columns, want %d", i, len(row), len(m.Mean))
		}
		proj := make([]float64, len(m.Components))
		for c, comp := range m.Components {
			var dot float64
			for j := range row {
				dot += (row[j] - m.Mean[j]) * comp[j]
			}
			proj[c] = dot
		}
		out[i] = proj
	}
	return out, nil
}

// ExplainedVarianceRatio returns each kept component's share of the total
// retained variance. If all variance is zero the ratios are zero.
func (m *Model) ExplainedVarianceRatio() []float64 {
	var total float64
	for _, v := range m.Variances {
		total += v
	}
	out := make([]float64, len(m.Variances))
	if total == 0 {
		return out
	}
	for i, v := range m.Variances {
		out[i] = v / total
	}
	return out
}

// jacobiEigen computes the eigenvalues and eigenvectors of a real symmetric
// matrix using the cyclic Jacobi rotation method. vectors[r][c] is
// component r of eigenvector c; values[c] is its eigenvalue.
func jacobiEigen(a [][]float64) (values []float64, vectors [][]float64) {
	n := len(a)
	// Work on a copy; build the accumulated rotation in v.
	m := make([][]float64, n)
	v := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n)
		copy(m[i], a[i])
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				rotate(m, v, p, q)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m[i][i]
	}
	return values, v
}

// rotate applies one Jacobi rotation zeroing m[p][q].
func rotate(m, v [][]float64, p, q int) {
	n := len(m)
	apq := m[p][q]
	app := m[p][p]
	aqq := m[q][q]
	theta := (aqq - app) / (2 * apq)
	t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
	c := 1 / math.Sqrt(t*t+1)
	s := t * c

	for k := 0; k < n; k++ {
		mkp := m[k][p]
		mkq := m[k][q]
		m[k][p] = c*mkp - s*mkq
		m[k][q] = s*mkp + c*mkq
	}
	for k := 0; k < n; k++ {
		mpk := m[p][k]
		mqk := m[q][k]
		m[p][k] = c*mpk - s*mqk
		m[q][k] = s*mpk + c*mqk
	}
	for k := 0; k < n; k++ {
		vkp := v[k][p]
		vkq := v[k][q]
		v[k][p] = c*vkp - s*vkq
		v[k][q] = s*vkp + c*vkq
	}
}

func offDiagNorm(m [][]float64) float64 {
	var sum float64
	n := len(m)
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			sum += m[i][j] * m[i][j]
		}
	}
	return math.Sqrt(sum)
}
