package sybiltd_test

import (
	"fmt"
	"time"

	"sybiltd"
)

// The Table I attack: plain CRH is dragged toward the fabricated -50 dBm
// on the attacked tasks, while the framework holds.
func Example() {
	ds := sybiltd.PaperExampleWithSybil()

	crh, err := sybiltd.CRH{}.Run(ds)
	if err != nil {
		panic(err)
	}
	fw := sybiltd.Framework{Grouper: sybiltd.AGTR{Mode: 2}}
	safe, err := fw.Run(ds)
	if err != nil {
		panic(err)
	}
	fmt.Printf("T1 under attack: CRH %.0f dBm, framework %.0f dBm\n",
		crh.Truths[0], safe.Truths[0])
	// Output:
	// T1 under attack: CRH -53 dBm, framework -80 dBm
}

// Building a campaign by hand and aggregating it with the median baseline.
func ExampleMedian_Run() {
	ds := sybiltd.NewDataset(1)
	base := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	for i, v := range []float64{10, 12, 90} {
		ds.AddAccount(sybiltd.Account{
			ID: fmt.Sprintf("u%d", i+1),
			Observations: []sybiltd.Observation{
				{Task: 0, Value: v, Time: base.Add(time.Duration(i) * time.Minute)},
			},
		})
	}
	res, err := sybiltd.Median{}.Run(ds)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Truths[0])
	// Output:
	// 12
}

// Grouping the paper example's accounts by trajectory: the attacker's
// three accounts form one group.
func ExampleAGTR_Group() {
	ds := sybiltd.PaperExampleWithSybil()
	g, err := sybiltd.AGTR{Mode: 2}.Group(ds)
	if err != nil {
		panic(err)
	}
	for _, members := range g.Groups {
		if len(members) > 1 {
			for _, m := range members {
				fmt.Println(ds.Accounts[m].ID)
			}
		}
	}
	// Output:
	// 4'
	// 4''
	// 4'''
}

// Scoring a grouping against the true account owners.
func ExampleAdjustedRandIndex() {
	truth := []int{0, 0, 1, 1}
	perfect := []int{5, 5, 9, 9}
	ari, err := sybiltd.AdjustedRandIndex(truth, perfect)
	if err != nil {
		panic(err)
	}
	fmt.Println(ari)
	// Output:
	// 1
}

// Streaming aggregation that follows a drifting phenomenon.
func ExampleOnline() {
	online, err := sybiltd.NewOnline(1, sybiltd.OnlineConfig{Decay: 0.5})
	if err != nil {
		panic(err)
	}
	// Round 1: the truth is 10.
	for _, u := range []string{"a", "b", "c"} {
		if err := online.Observe(u, 0, 10); err != nil {
			panic(err)
		}
	}
	online.Tick()
	// Rounds 2-4: the truth drifts to 30.
	for round := 0; round < 3; round++ {
		for _, u := range []string{"a", "b", "c"} {
			if err := online.Observe(u, 0, 30); err != nil {
				panic(err)
			}
		}
		online.Tick()
	}
	fmt.Printf("%.0f\n", online.Estimate()[0])
	// Output:
	// 30
}
