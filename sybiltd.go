// Package sybiltd is a Sybil-resistant truth discovery library for mobile
// crowdsensing (MCS), reproducing Lin et al., "A Sybil-Resistant Truth
// Discovery Framework for Mobile Crowdsensing" (ICDCS 2019).
//
// An MCS platform publishes sensing tasks, collects numeric observations
// from accounts, and aggregates them into per-task truth estimates. Plain
// truth discovery (CRH and its family) is easily manipulated by a Sybil
// attacker who submits fabricated data from many accounts. This library
// provides:
//
//   - Truth discovery algorithms: CRH plus mean/median baselines.
//   - Three account grouping methods that cluster accounts likely owned by
//     the same user: AGFP (motion-sensor device fingerprints), AGTS
//     (accomplished-task-set affinity), and AGTR (trajectory similarity via
//     dynamic time warping) — plus Combo, which combines them.
//   - The Sybil-resistant Framework, which pairs any grouping method with
//     a group-level truth discovery loop so that an attacker's accounts
//     count as one voice.
//   - A full synthetic campaign generator (simulated MEMS fingerprints,
//     Wi-Fi radio environment, walking traces, and Attack-I / Attack-II
//     adversaries) and the experiment harness regenerating every table and
//     figure of the paper.
//
// Quickstart:
//
//	ds := sybiltd.NewDataset(4)
//	ds.AddAccount(sybiltd.Account{ID: "alice", Observations: []sybiltd.Observation{
//		{Task: 0, Value: -84.5, Time: t0},
//	}})
//	fw := sybiltd.Framework{Grouper: sybiltd.AGTR{}}
//	res, err := fw.Run(ds)
//	// res.Truths[j] is the Sybil-resistant estimate for task j.
//
// The subpackages under internal/ hold the implementations; this package
// re-exports the stable surface that applications are expected to use.
package sybiltd

import (
	"sybiltd/internal/attack"
	"sybiltd/internal/core"
	"sybiltd/internal/experiment"
	"sybiltd/internal/grouping"
	"sybiltd/internal/mcs"
	"sybiltd/internal/metrics"
	"sybiltd/internal/obs"
	"sybiltd/internal/simulate"
	"sybiltd/internal/truth"
)

// Data model (see internal/mcs).
type (
	// Dataset is a crowdsensing campaign: tasks plus accounts with their
	// observations and optional device fingerprints.
	Dataset = mcs.Dataset
	// Task is one sensing task at a point of interest.
	Task = mcs.Task
	// Account is one platform account and everything it submitted.
	Account = mcs.Account
	// Observation is one numeric report for one task at one time.
	Observation = mcs.Observation
)

// NewDataset creates a dataset with m tasks named T1..Tm.
func NewDataset(m int) *Dataset { return mcs.NewDataset(m) }

// Truth discovery (see internal/truth).
type (
	// Algorithm aggregates a dataset into per-task truth estimates.
	Algorithm = truth.Algorithm
	// Result carries estimated truths, account weights, and loop metadata.
	Result = truth.Result
	// CRH is the iterative truth discovery baseline (Li et al. 2014).
	CRH = truth.CRH
	// CRHConfig tunes CRH's iteration.
	CRHConfig = truth.CRHConfig
	// Mean is the unweighted-average baseline.
	Mean = truth.Mean
	// Median is the robust median baseline.
	Median = truth.Median
	// CATD is the confidence-aware algorithm for long-tail sources
	// (reference [9] of the paper).
	CATD = truth.CATD
	// GTM is the Gaussian truth model (EM over per-source variances).
	GTM = truth.GTM
	// Online is the evolving-truth streaming estimator (reference [11]);
	// construct with NewOnline.
	Online = truth.Online
	// OnlineConfig tunes an Online estimator.
	OnlineConfig = truth.OnlineConfig
	// MajorityVote is the unweighted categorical baseline (labels as
	// non-negative integer Values).
	MajorityVote = truth.MajorityVote
	// CategoricalCRH is iterative weighted voting for categorical tasks.
	CategoricalCRH = truth.CategoricalCRH
)

// NewOnline creates an evolving-truth streaming estimator over numTasks
// tasks.
func NewOnline(numTasks int, cfg OnlineConfig) (*Online, error) {
	return truth.NewOnline(numTasks, cfg)
}

// Account grouping (see internal/grouping).
type (
	// Grouper partitions accounts into groups likely owned by one user.
	Grouper = grouping.Grouper
	// Grouping is a partition of account indices.
	Grouping = grouping.Grouping
	// AGFP groups by motion-sensor device fingerprint (defends Attack-I).
	AGFP = grouping.AGFP
	// AGTS groups by accomplished-task-set affinity (defends Attack-II
	// when task sets are diverse).
	AGTS = grouping.AGTS
	// AGTR groups by trajectory DTW similarity (defends Attack-II even
	// with similar task sets).
	AGTR = grouping.AGTR
	// Combo combines several groupers (intersection/union/majority).
	Combo = grouping.Combo
)

// Combination modes for Combo.
const (
	CombineIntersect = grouping.CombineIntersect
	CombineUnion     = grouping.CombineUnion
	CombineMajority  = grouping.CombineMajority
)

// The Sybil-resistant framework (see internal/core).
type (
	// Framework pairs a Grouper with group-level truth discovery
	// (Algorithm 2 of the paper). It implements Algorithm.
	Framework = core.Framework
	// FrameworkConfig tunes the framework's aggregation and iteration.
	FrameworkConfig = core.Config
	// Aggregator selects the within-group data-collapse strategy (Eq. 3).
	Aggregator = core.Aggregator
	// Windowed evaluates an Algorithm over a sliding time window,
	// producing evolving Sybil-resistant estimates.
	Windowed = core.Windowed
	// WindowPoint is one estimate of a Windowed time series.
	WindowPoint = core.WindowPoint
)

// Observability (see internal/obs). Every algorithm instruments itself
// against the process-wide default registry; Metrics exposes it so
// applications embedding the library (rather than running mcsplatform)
// can scrape the same counters, and FrameworkConfig.Observer receives
// live span and per-iteration convergence callbacks.
type (
	// MetricsRegistry holds named counters, gauges, and histograms; all
	// methods are safe for concurrent use.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time JSON-marshalable view of a
	// registry.
	MetricsSnapshot = obs.Snapshot
	// Observer receives stage span and truth-loop iteration callbacks
	// from an instrumented Framework run (set FrameworkConfig.Observer).
	Observer = obs.Observer
)

// Metrics returns the process-wide default metrics registry that the
// library's instrumentation records into.
func Metrics() *MetricsRegistry { return obs.Default() }

// Uncertainty returns the weighted standard error of each task's estimate
// (NaN without data, +Inf for single-report tasks), letting platforms flag
// low-evidence estimates.
func Uncertainty(ds *Dataset, res Result) ([]float64, error) {
	return truth.Uncertainty(ds, res)
}

// Group aggregation strategies.
const (
	AggregateMean             = core.AggregateMean
	AggregateMedian           = core.AggregateMedian
	AggregateInverseDeviation = core.AggregateInverseDeviation
	AggregateMajority         = core.AggregateMajority
)

// Adversary models (see internal/attack).
type (
	// AttackProfile describes one Sybil attacker for the simulator.
	AttackProfile = attack.Profile
	// AttackStrategy fabricates the values Sybil accounts submit.
	AttackStrategy = attack.Strategy
	// FabricateStrategy reports a fixed target value from every account.
	FabricateStrategy = attack.Fabricate
	// DuplicateStrategy resubmits the attacker's one real measurement.
	DuplicateStrategy = attack.Duplicate
	// OffsetStrategy biases the real measurement by a constant.
	OffsetStrategy = attack.Offset
)

// Attack kinds.
const (
	AttackI  = attack.AttackI
	AttackII = attack.AttackII
)

// Simulation (see internal/simulate).
type (
	// ScenarioConfig parameterizes a synthetic campaign.
	ScenarioConfig = simulate.Config
	// Scenario is a built campaign: dataset, ground truth, true labels.
	Scenario = simulate.Scenario
)

// BuildScenario constructs a synthetic campaign (the paper's experimental
// setup by default: 10 tasks, 8 legitimate users, one Attack-I and one
// Attack-II attacker with 5 accounts each).
func BuildScenario(cfg ScenarioConfig) (*Scenario, error) { return simulate.Build(cfg) }

// Metrics (see internal/metrics).

// MAE returns the mean absolute error between estimates and ground truth.
func MAE(estimated, groundTruth []float64) (float64, error) {
	return metrics.MAE(estimated, groundTruth)
}

// AdjustedRandIndex scores a predicted grouping against the true one.
func AdjustedRandIndex(truthLabels, predicted []int) (float64, error) {
	return metrics.AdjustedRandIndex(truthLabels, predicted)
}

// Experiments (see internal/experiment).
type (
	// ExperimentOptions tunes a registry experiment run.
	ExperimentOptions = experiment.Options
	// ExperimentRunner is one reproducible paper table/figure.
	ExperimentRunner = experiment.Runner
)

// Experiments returns the registry of paper tables/figures by ID
// (table1, fig2, fig3, fig4, fig6, fig7, fig8, table4).
func Experiments() map[string]ExperimentRunner { return experiment.Registry() }

// ExperimentIDs lists the available experiment IDs, sorted.
func ExperimentIDs() []string { return experiment.IDs() }

// PaperExampleHonest returns the Table I example dataset without the
// attacker; PaperExampleWithSybil includes the attacker's three accounts.
func PaperExampleHonest() *Dataset { return truth.PaperExampleHonest() }

// PaperExampleWithSybil returns the Table I example dataset including the
// Sybil attacker's accounts.
func PaperExampleWithSybil() *Dataset { return truth.PaperExampleWithSybil() }
